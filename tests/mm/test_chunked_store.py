"""Property tests for chunked PageStatsStore growth and FreeFrameList.

The million-frame contract: a store over ``n_frames`` materializes only
a chunk-aligned prefix (``capacity``), frames beyond it are *virgin* —
implicitly FREE, zero counters, ``in_free_list == free_fill`` — and
every observable behaviour must match a store that preallocated all
``n_frames`` densely.  These tests drive allocation across chunk
boundaries and compare against the dense equivalents.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest

from repro.mm.frame_alloc import FrameAllocator, FreeFrameList
from repro.mm.page_store import NONE_SENTINEL, STATE_FREE, STATE_MAPPED, PageStatsStore

CHUNK = 16  # tests shrink the chunk so boundaries are cheap to cross


def make_store(n_frames: int, fast: int | None = None) -> PageStatsStore:
    return PageStatsStore(
        n_frames=n_frames,
        fast_frames=fast if fast is not None else n_frames // 2,
        chunk_frames=CHUNK,
    )


class TestChunkedGrowth:
    @pytest.mark.parametrize("n", [1, CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK + 5])
    def test_construction_materializes_at_most_one_chunk(self, n: int) -> None:
        store = make_store(n, fast=max(n // 2, 1))
        assert store.capacity == min(n, CHUNK)
        for name in store._COLUMNS:
            assert getattr(store, name).size == store.capacity

    @pytest.mark.parametrize("limit", [1, CHUNK - 1, CHUNK, CHUNK + 1])
    def test_ensure_is_chunk_aligned_and_capped(self, limit: int) -> None:
        store = make_store(6 * CHUNK)
        store.ensure(limit)
        assert store.capacity % CHUNK == 0 or store.capacity == store.n_frames
        assert store.capacity >= limit
        # growth doubles: repeated +1 extensions are amortized O(1)
        cap = store.capacity
        store.ensure(cap + 1)
        assert store.capacity == min(2 * cap, store.n_frames)

    def test_ensure_beyond_n_frames_raises(self) -> None:
        store = make_store(CHUNK)
        with pytest.raises(ValueError, match="exceeds"):
            store.ensure(CHUNK + 1)

    def test_grown_rows_have_virgin_defaults(self) -> None:
        store = make_store(4 * CHUNK, fast=CHUNK + 3)
        store.free_fill = True
        lo = store.capacity
        store.ensure(3 * CHUNK)
        span = slice(lo, store.capacity)
        assert (store.state[span] == STATE_FREE).all()
        assert (store.pid[span] == NONE_SENTINEL).all()
        assert (store.vpn[span] == NONE_SENTINEL).all()
        assert (store.heat[span] == 0.0).all()
        assert (store.reads[span] == 0).all() and (store.writes[span] == 0).all()
        assert store.in_free_list[span].all()  # free_fill respected
        # tier partition holds across the growth boundary
        pfns = np.arange(lo, store.capacity)
        np.testing.assert_array_equal(store.tier_id[span], (pfns >= store.fast_frames))

    def test_growth_preserves_written_prefix(self) -> None:
        store = make_store(4 * CHUNK)
        store.pid[3] = 42
        store.vpn[3] = 99
        store.state[3] = STATE_MAPPED
        store.heat[5] = 1.5
        store.ensure(2 * CHUNK + 1)
        assert int(store.pid[3]) == 42 and int(store.vpn[3]) == 99
        assert float(store.heat[5]) == 1.5


class TestAllocatorAcrossChunks:
    def _allocator(self, fast: int = CHUNK + 2, slow: int = 3 * CHUNK) -> FrameAllocator:
        return FrameAllocator(fast_frames=fast, slow_frames=slow, chunk_frames=CHUNK)

    @staticmethod
    def _attach(alloc: FrameAllocator, pfns, pid: int = 7) -> None:
        store = alloc.store
        for pfn in pfns:
            store.pid[pfn] = pid
            store.vpn[pfn] = pfn
            store.state[pfn] = STATE_MAPPED

    @pytest.mark.parametrize("count", [1, CHUNK - 1, CHUNK, CHUNK + 1])
    def test_allocate_across_the_chunk_boundary(self, count: int) -> None:
        alloc = self._allocator()
        pfns = [alloc.allocate_pfn(0, fallback=True) for _ in range(count)]
        assert pfns == list(range(count))  # virgin frames pop ascending
        assert alloc.store.capacity >= count
        assert not alloc.store.in_free_list[pfns].any()
        self._attach(alloc, pfns)
        alloc.check_consistency()

    def test_free_and_reuse_across_chunks(self) -> None:
        alloc = self._allocator()
        pfns = [alloc.allocate_pfn(1) for _ in range(CHUNK + 4)]
        self._attach(alloc, pfns)
        alloc.check_consistency()
        # free frames from both sides of the boundary, ensure FIFO reuse
        victims = [pfns[0], pfns[CHUNK - 1], pfns[CHUNK], pfns[CHUNK + 1]]
        for pfn in victims:
            alloc.free(pfn)
        alloc.check_consistency()
        # virgin frames pop first; once exhausted, recycled pop FIFO
        n_virgin_left = alloc.tiers[1].free_list.virgin_range[1] \
            - alloc.tiers[1].free_list.virgin_range[0]
        reused = [alloc.allocate_pfn(1) for _ in range(n_virgin_left + len(victims))]
        assert reused[n_virgin_left:] == victims  # FIFO reuse order
        self._attach(alloc, reused)
        alloc.check_consistency()

    def test_double_free_detected_across_chunks(self) -> None:
        alloc = self._allocator()
        pfns = [alloc.allocate_pfn(1) for _ in range(CHUNK + 1)]
        alloc.free(pfns[-1])
        with pytest.raises(ValueError, match="double free"):
            alloc.free(pfns[-1])

    def test_free_of_virgin_frame_rejected(self) -> None:
        alloc = self._allocator()
        with pytest.raises(ValueError, match="never allocated"):
            alloc.free(alloc.tiers[1].base_pfn + 2 * CHUNK)

    def test_owned_and_foreign_frames_see_only_materialized(self) -> None:
        alloc = self._allocator()
        store = alloc.store
        pfns = [alloc.allocate_pfn(1) for _ in range(CHUNK + 3)]
        for pfn in pfns:
            store.pid[pfn] = 11
            store.vpn[pfn] = pfn
            store.state[pfn] = STATE_MAPPED
        np.testing.assert_array_equal(store.owned_frames(11), np.asarray(pfns))
        assert store.foreign_frames({11}).size == 0
        assert store.foreign_frames(set()).size == len(pfns)
        # virgin frames are implicitly FREE: never reported as owned
        assert store.owned_frames(NONE_SENTINEL).size == 0

    def test_check_consistency_catches_stray_bit_in_grown_chunk(self) -> None:
        alloc = self._allocator()
        pfns = [alloc.allocate_pfn(1) for _ in range(CHUNK + 2)]
        alloc.store.in_free_list[pfns[-1]] = True  # not actually listed
        with pytest.raises(RuntimeError, match="free list and bitmap disagree"):
            alloc.check_consistency()


class TestFreeFrameListEquivalence:
    """FreeFrameList must reproduce ``deque(range(base, base+total))``."""

    def _both(self, base: int = 5, total: int = 12):
        return FreeFrameList(base, total), deque(range(base, base + total))

    def test_popleft_order_matches_dense_deque(self) -> None:
        ffl, dense = self._both()
        rng = np.random.default_rng(0)
        for step in range(40):
            if dense and rng.random() < 0.6:
                assert ffl.popleft() == dense.popleft()
            elif dense and rng.random() < 0.3:
                assert ffl.pop() == dense.pop()
            else:
                pfn = 100 + step
                ffl.append(pfn)
                dense.append(pfn)
            assert len(ffl) == len(dense)
            assert list(ffl) == list(dense)

    def test_bool_len_contains(self) -> None:
        ffl, dense = self._both(0, 3)
        assert bool(ffl) and len(ffl) == 3 and 2 in ffl and 3 not in ffl
        for _ in range(3):
            ffl.popleft()
            dense.popleft()
        assert not ffl and len(ffl) == 0
        with pytest.raises(IndexError):
            ffl.pop()

    def test_getitem_matches_dense(self) -> None:
        ffl, dense = self._both(2, 6)
        ffl.popleft(); dense.popleft()
        ffl.append(77); dense.append(77)
        for i in range(len(dense)):
            assert ffl[i] == dense[i]
        assert ffl[-1] == dense[-1]
        with pytest.raises(IndexError):
            ffl[len(dense)]

    def test_virgin_range_and_recycled_array(self) -> None:
        ffl = FreeFrameList(10, 4)
        assert ffl.virgin_range == (10, 14)
        ffl.popleft()
        ffl.append(99)
        assert ffl.virgin_range == (11, 14)
        np.testing.assert_array_equal(ffl.recycled_array(), [99])
        # pop() takes the recycled tail first, then shrinks the virgin end
        assert ffl.pop() == 99
        assert ffl.pop() == 13
        assert ffl.virgin_range == (11, 13)
