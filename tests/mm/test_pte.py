"""PTE bitfield codec, including round-trip property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mm import pte as P


def test_basic_encode_decode():
    v = P.pte_make(pfn=1234, tid=5, writable=True, dirty=True)
    d = P.pte_decode(v)
    assert d.present and d.writable and d.dirty
    assert not d.accessed and not d.hint_poisoned and not d.shadowed
    assert d.pfn == 1234
    assert d.tid == 5
    assert not d.shared


def test_shared_sentinel():
    v = P.pte_make(pfn=1, tid=P.PTE_SHARED_TID)
    assert P.pte_decode(v).shared
    assert P.pte_is_shared(v)
    assert P.PTE_SHARED_TID == 0x7F
    assert P.PTE_MAX_TID == 0x7E


def test_field_bounds():
    with pytest.raises(ValueError):
        P.pte_make(pfn=1 << 40, tid=0)
    with pytest.raises(ValueError):
        P.pte_make(pfn=0, tid=0x80)
    with pytest.raises(ValueError):
        P.pte_make(pfn=-1, tid=0)


def test_with_pfn_preserves_flags_and_tid():
    v = P.pte_make(pfn=10, tid=3, dirty=True, shadowed=True)
    v2 = P.pte_with_pfn(v, 999)
    assert P.pte_pfn(v2) == 999
    assert P.pte_tid(v2) == 3
    assert P.pte_is_dirty(v2)
    assert P.pte_decode(v2).shadowed


def test_with_tid_preserves_pfn():
    v = P.pte_make(pfn=10, tid=3)
    v2 = P.pte_with_tid(v, P.PTE_SHARED_TID)
    assert P.pte_pfn(v2) == 10
    assert P.pte_is_shared(v2)


def test_flag_set_clear():
    v = P.pte_make(pfn=1, tid=0)
    v = P.pte_set_flag(v, P.PTE_DIRTY)
    assert P.pte_is_dirty(v)
    v = P.pte_clear_flag(v, P.PTE_DIRTY)
    assert not P.pte_is_dirty(v)


def test_accessed_flag():
    v = P.pte_make(pfn=1, tid=0, accessed=True)
    assert P.pte_is_accessed(v)


@given(
    pfn=st.integers(min_value=0, max_value=(1 << 40) - 1),
    tid=st.integers(min_value=0, max_value=0x7F),
    present=st.booleans(),
    writable=st.booleans(),
    accessed=st.booleans(),
    dirty=st.booleans(),
    hint=st.booleans(),
    shadow=st.booleans(),
)
def test_roundtrip_property(pfn, tid, present, writable, accessed, dirty, hint, shadow):
    v = P.pte_make(
        pfn=pfn, tid=tid, present=present, writable=writable,
        accessed=accessed, dirty=dirty, hint_poisoned=hint, shadowed=shadow,
    )
    d = P.pte_decode(v)
    assert d == (present, writable, accessed, dirty, hint, shadow, pfn, tid)


@given(
    pfn1=st.integers(min_value=0, max_value=(1 << 40) - 1),
    pfn2=st.integers(min_value=0, max_value=(1 << 40) - 1),
    tid=st.integers(min_value=0, max_value=0x7F),
)
def test_repoint_never_disturbs_other_fields(pfn1, pfn2, tid):
    v = P.pte_make(pfn=pfn1, tid=tid, dirty=True, accessed=True)
    v2 = P.pte_with_pfn(v, pfn2)
    assert P.pte_decode(v2)._replace(pfn=pfn1) == P.pte_decode(v)
