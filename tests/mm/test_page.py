"""Physical frame metadata."""

import pytest

from repro.mm.page import PageState, PhysPage


def test_attach_detach_lifecycle():
    p = PhysPage(pfn=1, tier_id=0)
    p.attach(pid=10, vpn=100)
    assert p.state is PageState.MAPPED
    assert (p.pid, p.vpn) == (10, 100)
    p.detach()
    assert p.state is PageState.FREE
    assert p.pid is None and p.vpn is None


def test_double_attach_rejected():
    p = PhysPage(pfn=1, tier_id=0)
    p.attach(10, 100)
    with pytest.raises(ValueError):
        p.attach(11, 101)


def test_shadow_frame_can_be_reattached():
    p = PhysPage(pfn=1, tier_id=1)
    p.attach(10, 100)
    p.state = PageState.SHADOW
    p.attach(10, 100)  # remap-demotion reattaches the shadow
    assert p.state is PageState.MAPPED


def test_access_accounting():
    p = PhysPage(pfn=1, tier_id=0)
    p.attach(1, 1)
    p.record_access(False, tid=0, cycle=5, count=3)
    p.record_access(True, tid=1, cycle=9, count=1)
    assert p.reads == 3 and p.writes == 1
    assert p.total_accesses == 4
    assert p.write_fraction == pytest.approx(0.25)
    assert p.last_access_cycle == 9
    assert p.accessing_tids == {0, 1}


def test_epoch_counters_reset_independently():
    p = PhysPage(pfn=1, tier_id=0)
    p.record_access(False, tid=0, cycle=1, count=5)
    p.reset_epoch_counters()
    assert p.epoch_reads == 0
    assert p.reads == 5  # cumulative survives


def test_write_during_migration_sets_dirty_flag():
    p = PhysPage(pfn=1, tier_id=0)
    p.state = PageState.MIGRATING
    p.record_access(False, tid=0, cycle=1)
    assert not p.dirty_since_copy
    p.record_access(True, tid=0, cycle=2)
    assert p.dirty_since_copy


def test_write_fraction_of_untouched_page():
    assert PhysPage(pfn=1, tier_id=0).write_fraction == 0.0


def test_detach_clears_stats():
    p = PhysPage(pfn=1, tier_id=0)
    p.attach(1, 1)
    p.record_access(True, tid=2, cycle=1)
    p.heat = 9.0
    p.detach()
    assert p.writes == 0 and p.heat == 0.0 and p.accessing_tids == set()
