"""Transparent huge pages: registration, skew detection, splitting."""

import numpy as np
import pytest

from repro.mm.thp import HugePageManager
from repro.sim.units import BASE_PAGES_PER_HUGE_PAGE as HP


def test_huge_base_alignment():
    assert HugePageManager.huge_base(0) == 0
    assert HugePageManager.huge_base(511) == 0
    assert HugePageManager.huge_base(512) == 512
    assert HugePageManager.huge_base(1000) == 512


def test_register_covers_only_full_blocks():
    m = HugePageManager()
    # Region [100, 100+1024): fully covers exactly one 512-block (512..1024).
    created = m.register_region(start_vpn=100, n_pages=1024)
    assert created == 1
    assert m.is_huge(512) and m.is_huge(1023)
    assert not m.is_huge(100)


def test_register_aligned_region():
    m = HugePageManager()
    assert m.register_region(0, 3 * HP) == 3
    assert m.register_region(0, 3 * HP) == 0  # idempotent


def test_disabled_manager_registers_nothing():
    m = HugePageManager(enabled=False)
    assert m.register_region(0, 4 * HP) == 0
    assert not m.is_huge(0)


def test_record_accesses_builds_histogram():
    m = HugePageManager()
    m.register_region(0, HP)
    vpns = np.array([0, 0, 1, 5, 5, 5], dtype=np.int64)
    m.record_accesses(vpns)
    region = m.regions[0]
    assert region.accesses == 6
    assert region.subpage_hist[0] == 2
    assert region.subpage_hist[5] == 3


def test_skewed_region_is_split_candidate():
    m = HugePageManager()
    m.register_region(0, HP)
    # All traffic on 4 subpages: massive skew.
    vpns = np.repeat(np.array([1, 2, 3, 4], dtype=np.int64), 50)
    m.record_accesses(vpns)
    assert m.split_candidates(min_accesses=64) == [0]


def test_uniform_region_not_split():
    m = HugePageManager()
    m.register_region(0, HP)
    m.record_accesses(np.arange(HP, dtype=np.int64))  # one access each
    m.record_accesses(np.arange(HP, dtype=np.int64))
    assert m.split_candidates(min_accesses=64) == []


def test_cold_region_not_split():
    m = HugePageManager()
    m.register_region(0, HP)
    m.record_accesses(np.array([1, 1, 1], dtype=np.int64))
    assert m.split_candidates(min_accesses=64) == []


def test_split_returns_hot_first():
    m = HugePageManager()
    m.register_region(0, HP)
    vpns = np.repeat(np.array([7, 9], dtype=np.int64), [100, 60])
    m.record_accesses(vpns)
    order = m.split(0)
    assert order[0] == 7 and order[1] == 9
    assert len(order) == HP
    assert not m.is_huge(0)
    assert m.splits == 1


def test_split_unknown_rejected():
    with pytest.raises(KeyError):
        HugePageManager().split(0)


def test_tlb_reach():
    m = HugePageManager()
    m.register_region(0, 2 * HP)
    # 2 huge entries cover 1024 base pages; remaining entries 1 page each.
    assert m.tlb_reach_pages(tlb_entries=10) == 2 * HP + 8
    assert m.tlb_reach_pages(tlb_entries=1) == HP
