"""Chrono-style idle-time-weighted profiling."""

import numpy as np
import pytest

from repro.profiling.base import AccessBatch
from repro.profiling.chrono import ChronoProfiler


def batch(vpns, writes=None, pid=1):
    v = np.asarray(vpns, dtype=np.int64)
    w = np.zeros(v.size, dtype=bool) if writes is None else np.asarray(writes, dtype=bool)
    return AccessBatch(pid=pid, tid=0, vpns=v, is_write=w)


def make(n=8, window=1.0):
    p = ChronoProfiler(window_fraction=window)
    p.register_pages(1, np.arange(n, dtype=np.int64))
    return p


def test_instant_fault_scores_full_heat():
    p = make()
    p.observe(batch([0]))  # poisoned this epoch, faulted this epoch
    assert p.hotness(1)[0] == pytest.approx(1.0)


def test_long_idle_scores_low():
    p = make(n=8, window=1.0)
    # Page 3 sits poisoned for 3 epochs before its first touch.
    for _ in range(3):
        p.end_epoch()
    p.observe(batch([3]))
    # idle = 3 → weight 1/4, and 3 epochs of decay never applied (no heat yet).
    assert p.hotness(1)[3] == pytest.approx(0.25)


def test_idle_time_separates_frequencies():
    """Both pages are touched, but one instantly every rotation and one
    lazily — Chrono distinguishes them where plain hint faults cannot."""
    fast_p = make(n=4, window=1.0)
    for _ in range(6):
        fast_p.observe(batch([0]))  # instant re-touch
        fast_p.end_epoch()
    lazy_p = make(n=4, window=1.0)
    for e in range(6):
        if e % 3 == 2:
            lazy_p.observe(batch([0]))  # touched every third epoch
        lazy_p.end_epoch()
    assert fast_p.hotness(1)[0] > 2 * lazy_p.hotness(1).get(0, 0.0)


def test_app_pays_fault_cost():
    p = make()
    p.observe(batch([0, 1]))
    assert p.stats.app_overhead_cycles > 0
    assert p.stats.samples_taken == 2


def test_write_tracking():
    p = make()
    p.observe(batch([0, 1], writes=[True, False]))
    assert p.write_fraction(1, 0) == pytest.approx(1.0)
    assert p.write_fraction(1, 1) == 0.0


def test_one_fault_per_poisoning():
    p = make()
    p.observe(batch([0] * 50))
    assert p.stats.samples_taken == 1
    p.observe(batch([0] * 50))  # not poisoned anymore until rotation
    assert p.stats.samples_taken == 1


def test_rotation_repoisons():
    p = make(n=4, window=1.0)
    p.observe(batch([0]))
    p.end_epoch()  # rotation re-poisons page 0
    p.observe(batch([0]))
    assert p.stats.samples_taken == 2


def test_forget():
    p = make()
    p.observe(batch([0]))
    p.forget(1)
    assert p.hotness(1) == {}
    p.end_epoch()  # no crash


def test_validation():
    with pytest.raises(ValueError):
        ChronoProfiler(window_fraction=0.0)
