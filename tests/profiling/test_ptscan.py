"""Accessed-bit scanning profiler."""

import numpy as np
import pytest

from repro.profiling.base import AccessBatch
from repro.profiling.ptscan import SCAN_COST_PER_PTE, PtScanProfiler


def batch(vpns, writes=None, pid=1):
    v = np.asarray(vpns, dtype=np.int64)
    w = np.zeros(v.size, dtype=bool) if writes is None else np.asarray(writes, dtype=bool)
    return AccessBatch(pid=pid, tid=0, vpns=v, is_write=w)


def test_binary_signal_ignores_frequency():
    """One access and a thousand accesses look identical per scan."""
    prof = PtScanProfiler()
    prof.observe(batch([1] * 1000 + [2]))
    prof.end_epoch()
    heat = prof.hotness(1)
    assert heat[1] == heat[2]


def test_frequency_emerges_across_epochs():
    """Repeated-touch pages accumulate heat across scans (CLOCK-style)."""
    prof = PtScanProfiler(decay=0.5)
    for epoch in range(4):
        prof.observe(batch([1]))  # touched every epoch
        if epoch == 0:
            prof.observe(batch([2]))  # touched once
        prof.end_epoch()
    heat = prof.hotness(1)
    assert heat[1] > heat[2]


def test_dirty_bit_feeds_write_heat():
    prof = PtScanProfiler()
    prof.observe(batch([1, 2], writes=[True, False]))
    prof.end_epoch()
    assert prof.write_fraction(1, 1) == pytest.approx(1.0)
    assert prof.write_fraction(1, 2) == 0.0


def test_scan_cost_scales_with_rss_not_traffic():
    prof = PtScanProfiler()
    prof.set_rss(1, 10_000)
    prof.observe(batch([1]))  # one access only
    prof.end_epoch()
    assert prof.stats.overhead_cycles == pytest.approx(10_000 * SCAN_COST_PER_PTE)


def test_scan_interval_batches_epochs():
    prof = PtScanProfiler(scan_interval_epochs=2)
    prof.observe(batch([5]))
    prof.end_epoch()  # no scan yet
    assert prof.hotness(1) == {}
    prof.end_epoch()  # scan fires
    assert 5 in prof.hotness(1)


def test_bits_cleared_after_scan():
    prof = PtScanProfiler()
    prof.observe(batch([5]))
    prof.end_epoch()
    h1 = prof.hotness(1)[5]
    prof.end_epoch()  # page untouched this epoch: only decay
    assert prof.hotness(1).get(5, 0.0) < h1


def test_forget():
    prof = PtScanProfiler()
    prof.set_rss(1, 100)
    prof.observe(batch([5]))
    prof.forget(1)
    prof.end_epoch()
    assert prof.hotness(1) == {}


def test_invalid_interval():
    with pytest.raises(ValueError):
        PtScanProfiler(scan_interval_epochs=0)
