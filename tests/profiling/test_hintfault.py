"""NUMA-hinting-fault profiler."""

import numpy as np
import pytest

from repro.profiling.base import AccessBatch
from repro.profiling.hintfault import HINT_FAULT_COST_CYCLES, HintFaultProfiler


def batch(vpns, writes=None, pid=1):
    v = np.asarray(vpns, dtype=np.int64)
    w = np.zeros(v.size, dtype=bool) if writes is None else np.asarray(writes, dtype=bool)
    return AccessBatch(pid=pid, tid=0, vpns=v, is_write=w)


def prof_with_pages(n=16, window=0.25):
    p = HintFaultProfiler(window_fraction=window)
    p.register_pages(1, np.arange(n, dtype=np.int64))
    return p


def test_only_poisoned_pages_fault():
    p = prof_with_pages(n=16, window=0.25)  # window = pages [0..3]
    p.observe(batch(list(range(16))))
    heat_pages = set(p.hotness(1))
    assert heat_pages == {0, 1, 2, 3}


def test_fault_costs_charged_to_application():
    p = prof_with_pages(n=8, window=0.5)
    p.observe(batch([0, 1]))
    assert p.stats.app_overhead_cycles == pytest.approx(2 * HINT_FAULT_COST_CYCLES)


def test_page_faults_once_per_rotation():
    p = prof_with_pages(n=8, window=0.5)
    p.observe(batch([0] * 100))  # many touches, one fault
    assert p.stats.samples_taken == 1
    assert p.hotness(1)[0] == pytest.approx(1.0)


def test_rotation_covers_all_pages():
    p = prof_with_pages(n=8, window=0.25)
    seen = set()
    for _ in range(4):
        p.observe(batch(list(range(8))))
        seen |= set(p._poisoned.get(1, set()))
        p.end_epoch()
    assert len(set(p.hotness(1)) | seen) >= 8 - 2  # full coverage modulo rotation edge


def test_write_fault_recorded():
    p = prof_with_pages(n=4, window=1.0)
    p.observe(batch([0, 1], writes=[True, False]))
    assert p.write_fraction(1, 0) == pytest.approx(1.0)
    assert p.write_fraction(1, 1) == 0.0


def test_decay_applied_each_epoch():
    p = prof_with_pages(n=4, window=1.0)
    p.observe(batch([0]))
    before = p.hotness(1)[0]
    p.end_epoch()
    assert p.hotness(1)[0] == pytest.approx(before * 0.5)


def test_unregistered_pid_ignored():
    p = HintFaultProfiler()
    p.observe(batch([1, 2, 3], pid=9))
    assert p.hotness(9) == {}


def test_forget_drops_rotation_state():
    p = prof_with_pages()
    p.observe(batch([0]))
    p.forget(1)
    assert p.hotness(1) == {}
    p.end_epoch()  # must not crash on forgotten pid


def test_window_fraction_validation():
    with pytest.raises(ValueError):
        HintFaultProfiler(window_fraction=0.0)
    with pytest.raises(ValueError):
        HintFaultProfiler(window_fraction=1.5)
