"""Telescope-style hierarchical scanning."""

import numpy as np
import pytest

from repro.profiling.base import AccessBatch
from repro.profiling.ptscan import PtScanProfiler
from repro.profiling.telescope import TelescopeProfiler


def batch(vpns, pid=1):
    v = np.asarray(vpns, dtype=np.int64)
    return AccessBatch(pid=pid, tid=0, vpns=v, is_write=np.zeros(v.size, dtype=bool))


def make(n_pages=4096, leaf=64):
    p = TelescopeProfiler(leaf_region_pages=leaf)
    p.register_range(1, start_vpn=0, n_pages=n_pages)
    return p


def test_cold_regions_pruned():
    p = make(n_pages=4096)
    p.observe(batch([0]))  # one hot page in a 4096-page range
    p.end_epoch()
    # Only the root was visited + the touched page checked.
    assert p.nodes_visited <= 3
    assert p.nodes_pruned_pages == 0  # root itself was touched; no pruning yet
    p.end_epoch()  # nothing touched: root pruned, whole range skipped
    assert p.nodes_pruned_pages >= 4096 - 64


def test_zooming_refines_hot_regions():
    p = make(n_pages=1024, leaf=64)
    for _ in range(8):
        p.observe(batch([10]))
        p.end_epoch()
    # The zoom tree should now have depth: root split down toward 64 pages.
    root = p._roots[1]
    depth = 0
    node = root
    while node.children is not None:
        node = node.children[0]
        depth += 1
    assert depth >= 3  # 1024 -> 512 -> 256 -> 128 (at least)


def test_heat_lands_on_touched_pages():
    p = make(n_pages=512)
    p.observe(batch([5, 5, 9]))
    p.end_epoch()
    heat = p.hotness(1)
    assert set(heat) == {5, 9}


def test_cheaper_than_flat_scan_for_sparse_traffic():
    n = 8192
    tele = make(n_pages=n)
    flat = PtScanProfiler()
    flat.set_rss(1, n)
    for _ in range(6):
        tele.observe(batch([1, 2, 3]))
        flat.observe(batch([1, 2, 3]))
        tele.end_epoch()
        flat.end_epoch()
    assert tele.stats.overhead_cycles < flat.stats.overhead_cycles / 10


def test_out_of_range_accesses_ignored():
    p = make(n_pages=100)
    p.observe(batch([5000]))
    p.end_epoch()
    assert p.hotness(1) == {}


def test_unregistered_pid_ignored():
    p = TelescopeProfiler()
    p.observe(batch([1], pid=9))
    p.end_epoch()
    assert p.hotness(9) == {}


def test_forget():
    p = make()
    p.observe(batch([1]))
    p.forget(1)
    p.end_epoch()
    assert p.hotness(1) == {}


def test_validation():
    with pytest.raises(ValueError):
        TelescopeProfiler(leaf_region_pages=0)
    p = TelescopeProfiler()
    with pytest.raises(ValueError):
        p.register_range(1, 0, 0)
