"""PEBS sampling profiler."""

import numpy as np
import pytest

from repro.profiling.base import AccessBatch
from repro.profiling.pebs import PebsProfiler


def batch(vpns, writes=None, pid=1, tid=0):
    v = np.asarray(vpns, dtype=np.int64)
    w = np.zeros(v.size, dtype=bool) if writes is None else np.asarray(writes, dtype=bool)
    return AccessBatch(pid=pid, tid=tid, vpns=v, is_write=w)


def test_heat_proportional_to_frequency():
    prof = PebsProfiler(period=8, rng=np.random.default_rng(0))
    # Page 1 accessed 4x as often as page 2.
    stream = np.array(([1] * 4 + [2]) * 800, dtype=np.int64)
    prof.observe(batch(stream))
    heat = prof.hotness(1)
    assert heat[1] / heat[2] == pytest.approx(4.0, rel=0.3)


def test_expected_heat_unbiased():
    prof = PebsProfiler(period=16, rng=np.random.default_rng(1))
    prof.observe(batch(np.zeros(16_000, dtype=np.int64)))
    # Weight `period` per sample keeps expected heat ≈ true count.
    assert prof.hotness(1)[0] == pytest.approx(16_000, rel=0.1)


def test_false_negatives_for_rare_pages():
    """A page touched fewer times than the period is often missed —
    Telescope's false-negative problem at scale."""
    prof = PebsProfiler(period=512, rng=np.random.default_rng(2))
    # 256 pages touched once each: at most 1 sample can land.
    prof.observe(batch(np.arange(256, dtype=np.int64)))
    assert len(prof.hotness(1)) <= 1


def test_decay_halves_heat():
    prof = PebsProfiler(period=1, decay=0.5)
    prof.observe(batch([7] * 10))
    before = prof.hotness(1)[7]
    prof.end_epoch()
    assert prof.hotness(1)[7] == pytest.approx(before / 2)


def test_tiny_heat_evicted():
    prof = PebsProfiler(period=1, decay=0.5)
    prof.observe(batch([7]))
    for _ in range(40):
        prof.end_epoch()
    assert 7 not in prof.hotness(1)


def test_write_heat_tracked():
    prof = PebsProfiler(period=1)
    prof.observe(batch([1, 1, 1, 1], writes=[True, True, False, False]))
    assert prof.write_fraction(1, 1) == pytest.approx(0.5)


def test_overhead_accounted_per_sample():
    prof = PebsProfiler(period=10, rng=np.random.default_rng(3))
    prof.observe(batch(np.zeros(100, dtype=np.int64)))
    assert prof.stats.samples_taken == 10
    assert prof.stats.overhead_cycles > 0
    assert prof.stats.app_overhead_cycles == 0  # PEBS costs the daemon, not the app


def test_pid_isolation_and_forget():
    prof = PebsProfiler(period=1)
    prof.observe(batch([1], pid=1))
    prof.observe(batch([2], pid=2))
    assert set(prof.hotness(1)) == {1}
    assert set(prof.hotness(2)) == {2}
    prof.forget(1)
    assert prof.hotness(1) == {}
    assert set(prof.hotness(2)) == {2}


def test_hottest_ordering():
    prof = PebsProfiler(period=1)
    prof.observe(batch([1] * 5 + [2] * 10 + [3]))
    top = prof.hottest(1, 2)
    assert [vpn for vpn, _ in top] == [2, 1]


def test_empty_batch_noop():
    prof = PebsProfiler(period=4)
    prof.observe(batch([]))
    assert prof.hotness(1) == {}


def test_invalid_period():
    with pytest.raises(ValueError):
        PebsProfiler(period=0)
