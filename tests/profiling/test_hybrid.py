"""FlexMem-style hybrid profiler (Vulcan's default)."""

import numpy as np
import pytest

from repro.profiling.base import AccessBatch
from repro.profiling.hybrid import HybridProfiler


def batch(vpns, writes=None, pid=1):
    v = np.asarray(vpns, dtype=np.int64)
    w = np.zeros(v.size, dtype=bool) if writes is None else np.asarray(writes, dtype=bool)
    return AccessBatch(pid=pid, tid=0, vpns=v, is_write=w)


def make(period=16, window=1.0):
    p = HybridProfiler(period=period, window_fraction=window, rng=np.random.default_rng(0))
    p.register_pages(1, np.arange(64, dtype=np.int64))
    return p


def test_fusion_combines_both_mechanisms():
    p = make()
    p.observe(batch([0] * 64))  # hot: sampled by PEBS and faults once
    p.observe(batch([50]))  # cold: invisible to sampling, caught by fault
    p.end_epoch()
    heat = p.hotness(1)
    assert 50 in heat  # the fault rescued the sampling miss
    assert heat[0] > heat[50]  # but frequency still dominates


def test_fault_boost_bounded():
    """A page seen only through faults must not outrank a genuinely hot
    page — the streaming-scan pollution guard."""
    p = make(period=16)
    for _ in range(4):
        p.observe(batch([0] * 400))  # truly hot
        p.observe(batch([30]))  # scan-like: one touch
        p.end_epoch()
    heat = p.hotness(1)
    assert heat[0] > 4 * heat[30]


def test_default_boost_is_eighth_period():
    assert HybridProfiler(period=64).fault_boost == 8.0


def test_write_fraction_fused():
    p = make(period=1)
    p.observe(batch([5] * 8, writes=[True] * 4 + [False] * 4))
    p.end_epoch()
    assert p.write_fraction(1, 5) == pytest.approx(0.5, abs=0.2)


def test_cost_accounting_aggregates_both():
    p = make(period=4)
    p.observe(batch(list(range(32)) * 8))
    p.end_epoch()
    assert p.stats.overhead_cycles == p.pebs.stats.overhead_cycles + p.faults.stats.overhead_cycles
    assert p.stats.app_overhead_cycles == p.faults.stats.app_overhead_cycles
    assert p.stats.app_overhead_cycles > 0  # faults hit the app


def test_forget_clears_all_children():
    p = make()
    p.observe(batch([1] * 64))
    p.end_epoch()
    p.forget(1)
    assert p.hotness(1) == {}
    assert p.pebs.hotness(1) == {}
    assert p.faults.hotness(1) == {}


def test_epochs_counted():
    p = make()
    p.end_epoch()
    p.end_epoch()
    assert p.stats.epochs == 2
