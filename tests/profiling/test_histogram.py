"""Memtis-style hotness histogram and capacity thresholds."""

import numpy as np
import pytest

from repro.profiling.histogram import HotnessHistogram


def test_bin_of_log_buckets():
    h = HotnessHistogram(n_bins=8, base=2.0)
    assert h.bin_of(0.0) == 0
    assert h.bin_of(0.5) == 0
    assert h.bin_of(1.0) == 1
    assert h.bin_of(2.0) == 2
    assert h.bin_of(1e9) == 7  # clipped to top bin


def test_build_counts_everything():
    h = HotnessHistogram(n_bins=8)
    heats = np.array([0.0, 0.0, 1.0, 2.0, 4.0, 1e12])
    counts = h.build(heats)
    assert counts.sum() == heats.size
    assert counts[0] == 2


def test_build_empty():
    h = HotnessHistogram()
    assert h.build(np.empty(0)).sum() == 0


def test_hot_threshold_everything_fits():
    h = HotnessHistogram()
    assert h.hot_threshold(np.array([5.0, 3.0]), capacity_pages=10) == 0.0


def test_hot_threshold_selects_kth_hottest():
    h = HotnessHistogram()
    heats = np.array([1.0, 9.0, 5.0, 3.0, 7.0])
    # Capacity 2 → the 2 hottest (9, 7) are in; threshold = 7.
    assert h.hot_threshold(heats, capacity_pages=2) == 7.0


def test_hot_threshold_zero_capacity():
    h = HotnessHistogram()
    assert h.hot_threshold(np.array([1.0]), 0) == np.inf


def test_hot_threshold_negative_capacity_rejected():
    with pytest.raises(ValueError):
        HotnessHistogram().hot_threshold(np.array([1.0]), -1)


def test_hot_set_capacity_respected():
    h = HotnessHistogram()
    heat = {10: 5.0, 11: 1.0, 12: 9.0, 13: 3.0}
    assert h.hot_set(heat, 2) == {12, 10}
    assert h.hot_set(heat, 0) == set()
    assert h.hot_set({}, 5) == set()


def test_hot_set_deterministic_tiebreak():
    h = HotnessHistogram()
    heat = {3: 1.0, 1: 1.0, 2: 1.0}
    assert h.hot_set(heat, 2) == {1, 2}  # lowest vpn wins ties


def test_validation():
    with pytest.raises(ValueError):
        HotnessHistogram(n_bins=1)
    with pytest.raises(ValueError):
        HotnessHistogram(base=1.0)
