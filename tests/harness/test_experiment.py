"""The epoch-driven co-location harness."""

import numpy as np
import pytest

from repro.core.classify import ServiceClass
from repro.harness import ColocationExperiment
from repro.sim.config import MachineConfig, SimulationConfig, TierConfig
from repro.workloads.base import WorkloadSpec
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.microbench import MicrobenchWorkload


def tiny_machine(fast_pages=128, slow_pages=1024):
    unit = 10**6
    return MachineConfig(
        n_cores=16,
        fast=TierConfig(name="fast", capacity_bytes=fast_pages * unit, load_latency_ns=70.0, bandwidth_gbps=205.0),
        slow=TierConfig(name="slow", capacity_bytes=slow_pages * unit, load_latency_ns=162.0, bandwidth_gbps=25.0),
    )


def sim():
    return SimulationConfig(page_unit_bytes=10**6, epoch_seconds=0.5)


def wl(name="w", rss=100, start=0, threads=2, seed=0):
    return MemcachedWorkload(
        WorkloadSpec(name=name, service=ServiceClass.LC, rss_pages=rss, n_threads=threads,
                     start_epoch=start, accesses_per_thread=2000),
        seed=seed,
    )


def make_exp(policy="none", workloads=None, **kw):
    return ColocationExperiment(
        policy, workloads if workloads is not None else [wl()],
        machine_config=tiny_machine(), sim=sim(), cores_per_workload=4, **kw,
    )


def test_run_produces_full_timeseries():
    res = make_exp().run(5)
    ts = res.by_name("w")
    assert ts.epochs == list(range(5))
    assert len(ts.ops) == 5
    assert all(o > 0 for o in ts.ops)
    assert len(res.free_fast_pages) == 5
    assert len(res.migration_cycles) == 5


def test_admission_at_start_epoch():
    late = wl("late", start=3, seed=1)
    res = make_exp(workloads=[wl("early"), late]).run(6)
    assert res.by_name("early").epochs == list(range(6))
    assert res.by_name("late").epochs == [3, 4, 5]


def test_first_touch_fast_then_slow():
    # RSS 200 > 128 fast pages: the overflow lands in the slow tier.
    res = make_exp(workloads=[wl(rss=200)]).run(1)
    ts = res.by_name("w")
    assert ts.fast_pages[0] == 128
    assert ts.rss_pages[0] == 200


def test_fthr_reflects_placement():
    # Everything fits in fast: FTHR == 1.
    res = make_exp(workloads=[wl(rss=64)]).run(3)
    assert res.by_name("w").fthr_true[-1] == pytest.approx(1.0)


def test_hot_cold_accounting_consistent():
    res = make_exp(workloads=[wl(rss=200)]).run(3)
    ts = res.by_name("w")
    for hot, hot_fast, cold_fast, fast in zip(ts.hot_pages, ts.hot_in_fast, ts.hot_in_fast, ts.fast_pages):
        assert hot_fast <= hot
        assert hot_fast <= fast


def test_core_blocks_are_dedicated():
    exp = make_exp(workloads=[wl("a"), wl("b", seed=1)])
    exp.run(1)
    cores_by_pid = {}
    for pid, rt in exp.policy.workloads.items():
        cores_by_pid[pid] = set(rt.thread_core_map.values())
    blocks = list(cores_by_pid.values())
    assert blocks[0].isdisjoint(blocks[1])


def test_out_of_core_blocks_raises():
    workloads = [wl(f"w{i}", seed=i) for i in range(5)]  # 5 × 4 cores > 16
    with pytest.raises(RuntimeError):
        make_exp(workloads=workloads).run(1)


def test_deterministic_given_seed():
    r1 = make_exp(policy="memtis", seed=11).run(4)
    r2 = make_exp(policy="memtis", seed=11).run(4)
    np.testing.assert_allclose(r1.by_name("w").ops, r2.by_name("w").ops)
    np.testing.assert_allclose(r1.by_name("w").fthr_true, r2.by_name("w").fthr_true)


def test_alloc_and_fthr_series_shapes():
    res = make_exp(workloads=[wl("a"), wl("b", start=2, seed=1)]).run(4)
    alloc = res.alloc_series()
    fthr = res.fthr_series()
    assert set(alloc) == set(fthr)
    for pid in alloc:
        assert alloc[pid].shape == fthr[pid].shape


def test_by_name_missing_raises():
    res = make_exp().run(1)
    with pytest.raises(KeyError):
        res.by_name("nope")


def test_issue_rate_scales_ops():
    """An idle epoch yields fewer achieved ops than a burst epoch."""
    w = wl(rss=64)
    res = make_exp(workloads=[w]).run(8)
    ts = res.by_name("w")
    assert max(ts.ops) > 1.5 * min(ts.ops)  # burst/idle spread


def test_mean_ops_skips_warmup():
    res = make_exp().run(6)
    ts = res.by_name("w")
    assert ts.mean_ops(skip=3) == pytest.approx(float(np.mean(ts.ops[3:])))


def test_hot_ratio_property_bounds():
    res = make_exp(workloads=[wl(rss=200)]).run(4)
    hr = res.by_name("w").hot_ratio
    assert ((hr >= 0.0) & (hr <= 1.0)).all()


# -- gap-tolerant timeseries + round-trips (churn support) -----------------------

import json

from repro.harness.experiment import ExperimentResult, WorkloadTimeseries


def _late_short_ts():
    """A workload active only over epochs 2..4 of a 8-epoch run."""
    return WorkloadTimeseries(
        pid=7, name="late", epochs=[2, 3, 4],
        ops=[10.0, 20.0, 30.0], fast_pages=[1, 2, 3],
        fthr_true=[0.5, 0.6, 0.7],
    )


class TestGapTolerantSeries:
    def test_first_last_epoch(self):
        ts = _late_short_ts()
        assert ts.first_epoch == 2
        assert ts.last_epoch == 4
        empty = WorkloadTimeseries(pid=1, name="e")
        assert empty.first_epoch == -1
        assert empty.last_epoch == -1

    def test_active_mask(self):
        mask = _late_short_ts().active_mask(8)
        assert mask.tolist() == [False, False, True, True, True, False, False, False]

    def test_aligned_fills_gaps_with_nan(self):
        al = _late_short_ts().aligned("ops", 8)
        assert np.isnan(al[[0, 1, 5, 6, 7]]).all()
        assert al[2:5].tolist() == [10.0, 20.0, 30.0]

    def test_aligned_custom_fill_and_clipping(self):
        ts = _late_short_ts()
        al = ts.aligned("fast_pages", 4, fill=0.0)
        # Epoch 4 lies outside the requested axis and is dropped.
        assert al.tolist() == [0.0, 0.0, 1.0, 2.0]


class TestRoundTrips:
    def test_timeseries_round_trip(self):
        ts = _late_short_ts()
        assert WorkloadTimeseries.from_dict(ts.to_dict()) == ts

    def test_from_dict_tolerates_missing_series(self):
        d = {"pid": 3, "name": "old"}
        ts = WorkloadTimeseries.from_dict(d)
        assert ts.pid == 3 and ts.epochs == [] and ts.quota == []

    def test_from_dict_requires_identity(self):
        with pytest.raises(KeyError, match="pid"):
            WorkloadTimeseries.from_dict({"name": "x"})
        with pytest.raises(KeyError, match="name"):
            WorkloadTimeseries.from_dict({"pid": 1})

    def test_experiment_result_round_trip_with_departed_pid(self):
        res = ExperimentResult(
            policy_name="vulcan", n_epochs=8,
            workloads={
                100: WorkloadTimeseries(pid=100, name="stayer",
                                        epochs=list(range(8)), ops=[1.0] * 8),
                101: _late_short_ts(),  # departed at epoch 5
            },
            free_fast_pages=[4] * 8, migration_cycles=[0.0] * 8,
        )
        back = ExperimentResult.from_dict(res.to_dict())
        assert back == res
        assert back.workloads[101].last_epoch == 4
        # JSON transport is exact, including the short series.
        back2 = ExperimentResult.from_dict(json.loads(json.dumps(res.to_dict())))
        assert back2 == res
