"""Smoke tests for the heavy programmatic figure entry points.

Tiny budgets — these verify wiring and result shapes, not anchors
(the benchmark suite owns the anchors).
"""

import numpy as np

from repro.harness.figures import fig1_dilemma, fig9_timeline, fig10_comparison


def test_fig1_dilemma_smoke():
    solo, co = fig1_dilemma(epochs=3, accesses_per_thread=800)
    assert solo.by_name("memcached").epochs == [0, 1, 2]
    assert {ts.name for ts in co.workloads.values()} == {"memcached", "liblinear"}


def test_fig9_timeline_smoke():
    res = fig9_timeline(epochs=4, accesses_per_thread=800)
    # Only Memcached has started by epoch 4 (PageRank arrives at 25).
    assert {ts.name for ts in res.workloads.values()} == {"memcached"}
    ts = res.by_name("memcached")
    assert len(ts.gpt) == 4
    assert all(g > 0 for g in ts.gpt)


def test_fig10_comparison_smoke():
    perf, fairness = fig10_comparison(
        trials=1, epochs=6, accesses_per_thread=800, policies=("none", "vulcan"), steady_window=3
    )
    assert set(perf) == {"memcached", "pagerank", "liblinear"}
    for name in perf:
        assert set(perf[name]) == {"none", "vulcan"}
    assert len(fairness["vulcan"]) == 1
    assert 0.0 < fairness["vulcan"][0] <= 1.0
    assert np.isfinite(perf["memcached"]["vulcan"][0])
    # Workloads that start after the short run report NaN, not a crash.
    assert np.isnan(perf["liblinear"]["vulcan"][0])
