"""CSV/JSON result export."""

import csv
import json

import pytest

from repro.core.classify import ServiceClass
from repro.harness import ColocationExperiment
from repro.harness.export import to_json, to_rows, write_csv, write_json
from repro.sim.config import MachineConfig, SimulationConfig, TierConfig
from repro.workloads.base import WorkloadSpec
from repro.workloads.memcached import MemcachedWorkload

UNIT = 10**6


@pytest.fixture(scope="module")
def result():
    mc = MachineConfig(
        n_cores=8,
        fast=TierConfig(name="fast", capacity_bytes=64 * UNIT, load_latency_ns=70.0, bandwidth_gbps=205.0),
        slow=TierConfig(name="slow", capacity_bytes=512 * UNIT, load_latency_ns=162.0, bandwidth_gbps=25.0),
    )
    sim = SimulationConfig(page_unit_bytes=UNIT, epoch_seconds=0.5)
    wls = [
        MemcachedWorkload(
            WorkloadSpec(name=n, service=ServiceClass.LC, rss_pages=100, n_threads=2,
                         start_epoch=s, accesses_per_thread=1500),
            seed=i,
        )
        for i, (n, s) in enumerate([("a", 0), ("b", 2)])
    ]
    exp = ColocationExperiment("memtis", wls, machine_config=mc, sim=sim, seed=1, cores_per_workload=4)
    return exp.run(4)


def test_to_rows_shape(result):
    rows = to_rows(result)
    assert len(rows) == 4 + 2  # a: 4 epochs, b: 2 epochs
    for row in rows:
        assert row["policy"] == "memtis"
        assert row["workload"] in ("a", "b")
        assert "fthr_true" in row and 0.0 <= row["fthr_true"] <= 1.0


def test_write_csv_roundtrip(result, tmp_path):
    path = tmp_path / "out.csv"
    n = write_csv(result, path)
    with path.open() as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == n == 6
    assert {r["workload"] for r in rows} == {"a", "b"}
    # Epochs of the latecomer start at its admission.
    b_epochs = sorted(int(r["epoch"]) for r in rows if r["workload"] == "b")
    assert b_epochs == [2, 3]


def test_json_roundtrip(result, tmp_path):
    blob = to_json(result)
    encoded = json.dumps(blob)  # must be serializable
    decoded = json.loads(encoded)
    assert decoded["policy"] == "memtis"
    assert decoded["n_epochs"] == 4
    assert set(decoded["workloads"]) == {"a", "b"}
    assert len(decoded["workloads"]["a"]["ops"]) == 4
    assert len(decoded["free_fast_pages"]) == 4

    path = tmp_path / "out.json"
    write_json(result, path)
    assert json.loads(path.read_text())["policy"] == "memtis"
