"""Non-finite floats must survive strict-JSON transport losslessly.

``json.dumps`` emits bare ``NaN``/``Infinity`` literals (invalid JSON)
unless ``allow_nan=False`` — at which point serialization *raises*.
The service transports results over strict JSON, so non-finite values
travel as ``{"__float__": ...}`` markers and decode back bit for bit.
"""

from __future__ import annotations

import json
import math
from dataclasses import fields

import pytest

from repro.harness.experiment import ExperimentResult, WorkloadTimeseries
from repro.harness.jsonsafe import FLOAT_KEY, decode_nonfinite, encode_nonfinite


class TestMarkers:
    @pytest.mark.parametrize("value,marker", [
        (float("nan"), "NaN"),
        (float("inf"), "Infinity"),
        (float("-inf"), "-Infinity"),
    ])
    def test_encode_decode(self, value, marker):
        enc = encode_nonfinite({"x": [1.0, value]})
        assert enc["x"][1] == {FLOAT_KEY: marker}
        dec = decode_nonfinite(enc)
        assert dec["x"][0] == 1.0
        if math.isnan(value):
            assert math.isnan(dec["x"][1])
        else:
            assert dec["x"][1] == value

    def test_finite_payload_untouched(self):
        payload = {"a": [1.5, 2], "b": {"c": -0.0}, "s": "NaN"}
        assert encode_nonfinite(payload) == payload

    def test_encoded_form_is_strict_json(self):
        enc = encode_nonfinite([float("nan"), float("inf")])
        text = json.dumps(enc, allow_nan=False)  # would raise if any leaked
        assert math.isnan(decode_nonfinite(json.loads(text))[0])

    def test_unknown_marker_rejected(self):
        with pytest.raises(ValueError, match="unknown __float__ marker"):
            decode_nonfinite({FLOAT_KEY: "Elevendy"})


class TestExperimentRoundTrip:
    def _timeseries_with_nonfinite(self) -> WorkloadTimeseries:
        ts = WorkloadTimeseries(pid=1, name="w")
        ts.ops.extend([1.0, float("nan")])
        ts.fthr_true.extend([float("inf"), 0.5])
        ts.fast_pages.extend([3, 4])
        return ts

    def test_timeseries_round_trip_through_strict_json(self):
        ts = self._timeseries_with_nonfinite()
        wire = json.dumps(ts.to_dict(), allow_nan=False)
        back = WorkloadTimeseries.from_dict(json.loads(wire))
        assert back.ops[0] == 1.0 and math.isnan(back.ops[1])
        assert math.isinf(back.fthr_true[0]) and back.fthr_true[1] == 0.5
        assert back.fast_pages == [3, 4]

    def test_finite_timeseries_dict_is_byte_identical(self):
        """The golden suites depend on finite payloads passing through
        the encoder unchanged."""
        ts = WorkloadTimeseries(pid=1, name="w")
        ts.ops.extend([1.0, 2.0])
        d = ts.to_dict()
        for f in fields(ts):
            v = getattr(ts, f.name)
            assert d[f.name] == (list(v) if isinstance(v, list) else v)

    def test_experiment_result_round_trip(self):
        ts = self._timeseries_with_nonfinite()
        res = ExperimentResult(policy_name="vulcan", n_epochs=2,
                               workloads={1: ts},
                               migration_cycles=[0.0, float("inf")])
        wire = json.dumps(res.to_dict(), allow_nan=False)
        back = ExperimentResult.from_dict(json.loads(wire))
        assert math.isinf(back.migration_cycles[1])
        assert math.isnan(back.workloads[1].ops[1])
