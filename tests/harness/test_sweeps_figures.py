"""Sweep utility and programmatic figure entry points."""

import numpy as np
import pytest

from repro.core.classify import ServiceClass
from repro.harness import ColocationExperiment, Sweep
from repro.harness.figures import fig2_breakdown, fig3_shares, fig7_speedups
from repro.sim.config import MachineConfig, SimulationConfig, TierConfig
from repro.workloads.base import WorkloadSpec
from repro.workloads.memcached import MemcachedWorkload


def tiny_factory(fast_pages: int, seed: int):
    unit = 10**6
    mc = MachineConfig(
        n_cores=8,
        fast=TierConfig(name="fast", capacity_bytes=fast_pages * unit, load_latency_ns=70.0, bandwidth_gbps=205.0),
        slow=TierConfig(name="slow", capacity_bytes=1024 * unit, load_latency_ns=162.0, bandwidth_gbps=25.0),
    )
    sim = SimulationConfig(page_unit_bytes=unit, epoch_seconds=0.5)
    wl = MemcachedWorkload(
        WorkloadSpec(name="w", service=ServiceClass.LC, rss_pages=256, n_threads=2, accesses_per_thread=2000),
        seed=seed,
    )
    exp = ColocationExperiment("memtis", [wl], machine_config=mc, sim=sim, seed=seed, cores_per_workload=4)
    return exp.run(4)


class TestSweep:
    def metric(self):
        return {"fthr": lambda r: float(np.mean(r.by_name("w").fthr_true[-2:]))}

    def test_grid_times_seeds(self):
        sweep = Sweep(metrics=self.metric())
        cells = sweep.run(tiny_factory, grid={"fast_pages": [32, 128]}, seeds=[1, 2])
        assert len(cells) == 2
        for cell in cells:
            assert "fthr" in cell.metrics
            mean, ci = cell.metrics["fthr"]
            assert 0.0 <= mean <= 1.0

    def test_more_fast_memory_helps(self):
        sweep = Sweep(metrics=self.metric())
        sweep.run(tiny_factory, grid={"fast_pages": [32, 256]}, seeds=[1])
        xs, ys = sweep.series("fast_pages", "fthr")
        assert xs == [32, 256]
        assert ys[1] > ys[0]

    def test_best(self):
        sweep = Sweep(metrics=self.metric())
        sweep.run(tiny_factory, grid={"fast_pages": [32, 256]}, seeds=[1])
        assert sweep.best("fthr").param("fast_pages") == 256
        assert sweep.best("fthr", maximize=False).param("fast_pages") == 32

    def test_progress_callback(self):
        seen = []
        sweep = Sweep(metrics=self.metric(), progress=seen.append)
        sweep.run(tiny_factory, grid={"fast_pages": [32]}, seeds=[1, 2])
        assert len(seen) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Sweep(metrics={}).run(tiny_factory, grid={"fast_pages": [1]})
        sweep = Sweep(metrics=self.metric())
        with pytest.raises(ValueError):
            sweep.run(tiny_factory, grid={})
        with pytest.raises(ValueError):
            sweep.run(tiny_factory, grid={"fast_pages": [32]}, seeds=[])
        with pytest.raises(RuntimeError):
            Sweep(metrics=self.metric()).best("fthr")


class TestFigureApi:
    def test_fig2_rows(self):
        rows = fig2_breakdown()
        assert [r.cpus for r in rows] == [2, 4, 8, 16, 32]
        assert rows[0].total == pytest.approx(50_000, rel=1e-3)
        assert rows[-1].total == pytest.approx(750_000, rel=1e-3)

    def test_fig3_shares(self):
        shares = fig3_shares()
        assert shares[(32, 512)]["tlb"] == pytest.approx(0.65, abs=0.005)
        assert set(shares[(2, 2)]) == {"tlb", "copy", "fixed"}

    def test_fig7_speedups(self):
        s = fig7_speedups()
        assert s[2][0] == pytest.approx(3.44, abs=0.01)
        assert s[2][1] == pytest.approx(4.06, abs=0.01)
        assert s[512][1] < s[2][1]
