"""check_regression: one unit test per detection branch, for all three
payload families (scenario / service / fleet)."""

from __future__ import annotations

import json

import pytest

from repro.harness.bench import check_regression

#: (pinned-block key, throughput metric) per payload family
FAMILIES = [
    ("scenario", "epochs_per_sec"),
    ("service", "jobs_per_sec"),
    ("fleet", "node_epochs_per_sec"),
]


def _payload(kind: str, metric: str, value: float) -> dict:
    return {kind: {"name": "pinned", "quick": True}, "timing": {metric: value}}


def _write(tmp_path, payload: dict) -> str:
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(payload))
    return str(path)


@pytest.mark.parametrize("kind,metric", FAMILIES)
class TestPerFamily:
    def test_within_tolerance_passes(self, tmp_path, kind, metric):
        base = _write(tmp_path, _payload(kind, metric, 100.0))
        assert check_regression(_payload(kind, metric, 80.0), base) is None

    def test_improvement_passes(self, tmp_path, kind, metric):
        base = _write(tmp_path, _payload(kind, metric, 100.0))
        assert check_regression(_payload(kind, metric, 250.0), base) is None

    def test_regression_below_floor_detected(self, tmp_path, kind, metric):
        base = _write(tmp_path, _payload(kind, metric, 100.0))
        err = check_regression(_payload(kind, metric, 50.0), base)
        assert err is not None and f"{metric} regressed" in err

    def test_pinned_block_mismatch_detected(self, tmp_path, kind, metric):
        base = _write(tmp_path, _payload(kind, metric, 100.0))
        payload = _payload(kind, metric, 100.0)
        payload[kind] = {"name": "pinned", "quick": False}
        err = check_regression(payload, base)
        assert err is not None and "mismatch" in err

    def test_missing_baseline_is_an_error(self, tmp_path, kind, metric):
        err = check_regression(
            _payload(kind, metric, 100.0), str(tmp_path / "absent.json")
        )
        assert err is not None and "cannot read baseline" in err

    def test_malformed_baseline_is_an_error(self, tmp_path, kind, metric):
        path = tmp_path / "baseline.json"
        path.write_text('{"timing": {}}')
        err = check_regression(_payload(kind, metric, 100.0), str(path))
        assert err is not None and "cannot read baseline" in err


class TestFamilySelection:
    """The payload's block picks the metric — a fleet payload must never
    be judged on epochs_per_sec and vice versa."""

    def test_service_block_wins_over_default(self, tmp_path):
        payload = _payload("service", "jobs_per_sec", 100.0)
        base = _write(tmp_path, payload)
        assert check_regression(dict(payload), base) is None

    def test_fleet_block_selects_node_epochs(self, tmp_path):
        payload = _payload("fleet", "node_epochs_per_sec", 100.0)
        payload["timing"]["epochs_per_sec"] = 1.0  # decoy for the default branch
        base = _write(tmp_path, payload)
        slow = json.loads(json.dumps(payload))
        slow["timing"]["node_epochs_per_sec"] = 10.0
        err = check_regression(slow, base)
        assert err is not None and "node_epochs_per_sec" in err

    def test_plain_payload_uses_scenario_branch(self, tmp_path):
        payload = _payload("scenario", "epochs_per_sec", 100.0)
        base = _write(tmp_path, payload)
        slow = _payload("scenario", "epochs_per_sec", 10.0)
        err = check_regression(slow, base)
        assert err is not None and "epochs_per_sec" in err
