"""Parallel sweep execution and the on-disk result cache.

The headline guarantee under test: serial and parallel sweeps aggregate
**bit-identical** metrics for the same grid and seeds, and a repeated
sweep against a warm cache re-runs zero cells (asserted through the
obs cache-hit counter).  Failure handling differs by mode on purpose:
``workers=1`` raises a typed :class:`SweepCellError`; ``workers>1``
records a structured :class:`CellFailure` and keeps sweeping.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.classify import ServiceClass
from repro.harness import (
    CellFailure,
    ColocationExperiment,
    ResultCache,
    Sweep,
    SweepCellError,
    derive_cell_seed,
)
from repro.obs.metrics import get_registry
from repro.sim.config import MachineConfig, SimulationConfig, TierConfig
from repro.workloads.base import WorkloadSpec
from repro.workloads.memcached import MemcachedWorkload

UNIT = 10**6


def micro_factory(fast_pages: int, seed: int):
    """A deliberately tiny experiment so grid cells cost milliseconds."""
    mc = MachineConfig(
        n_cores=8,
        fast=TierConfig(name="fast", capacity_bytes=fast_pages * UNIT, load_latency_ns=70.0, bandwidth_gbps=205.0),
        slow=TierConfig(name="slow", capacity_bytes=512 * UNIT, load_latency_ns=162.0, bandwidth_gbps=25.0),
    )
    sim = SimulationConfig(page_unit_bytes=UNIT, epoch_seconds=0.5)
    wl = MemcachedWorkload(
        WorkloadSpec(name="w", service=ServiceClass.LC, rss_pages=128, n_threads=2, accesses_per_thread=1000),
        seed=seed,
    )
    exp = ColocationExperiment("memtis", [wl], machine_config=mc, sim=sim, seed=seed, cores_per_workload=4)
    return exp.run(3)


def failing_factory(fast_pages: int, seed: int):
    if seed == 2:
        raise ValueError(f"injected failure at fast_pages={fast_pages}")
    return micro_factory(fast_pages, seed)


def crashing_factory(fast_pages: int, seed: int):
    if seed == 2:
        os._exit(13)  # simulate a segfault/OOM-killed worker
    return micro_factory(fast_pages, seed)


def sleeping_factory(fast_pages: int, seed: int):
    if seed == 2:
        time.sleep(60.0)
    return micro_factory(fast_pages, seed)


METRICS = {
    "fthr": lambda r: float(np.mean(r.by_name("w").fthr_true[-2:])),
    "ops": lambda r: r.by_name("w").mean_ops(1),
}

GRID = {"fast_pages": [24, 96]}
SEEDS = [1, 2]


@pytest.fixture
def registry():
    reg = get_registry()
    was_enabled = reg.enabled
    reg.enabled = True
    reg.reset()
    yield reg
    reg.enabled = was_enabled
    reg.reset()


def run_sweep(workers: int, **kwargs):
    sweep = Sweep(metrics=dict(METRICS))
    cells = sweep.run(micro_factory, grid=GRID, seeds=SEEDS, workers=workers, **kwargs)
    return sweep, cells


def cell_data(cells):
    return [(c.params, c.metrics) for c in cells]


class TestDifferential:
    def test_serial_vs_parallel_identical(self):
        """The headline guarantee: exact float equality, not approx."""
        _, serial = run_sweep(workers=1)
        _, par2 = run_sweep(workers=2)
        _, par4 = run_sweep(workers=4)
        assert cell_data(serial) == cell_data(par2) == cell_data(par4)

    def test_parallel_respects_seed_order_in_aggregation(self):
        """Mean and CI95 come from samples in seed order regardless of
        which worker finishes first (same-value check is order-proof;
        this pins the structure too)."""
        sweep, cells = run_sweep(workers=4)
        assert [c.param("fast_pages") for c in cells] == GRID["fast_pages"]
        assert all(set(c.metrics) == set(METRICS) for c in cells)
        assert not sweep.errors


class TestCache:
    def test_cold_then_warm(self, registry, tmp_path):
        n_tasks = len(GRID["fast_pages"]) * len(SEEDS)
        sweep1, cells1 = run_sweep(workers=2, cache_dir=tmp_path)
        assert sweep1.cache_hits == 0
        assert sweep1.cache_misses == n_tasks
        hits = registry.aggregate("sweep_cache_hits")
        assert hits.get((), 0.0) == 0.0

        # Warm: zero cells re-run, every task restored from cache.
        registry.reset()
        sweep2, cells2 = run_sweep(workers=2, cache_dir=tmp_path)
        assert sweep2.cache_hits == n_tasks
        assert sweep2.cache_misses == 0
        assert registry.aggregate("sweep_cache_hits")[()] == n_tasks
        assert registry.aggregate("sweep_cells_done", "status") == {}  # nothing executed
        assert cell_data(cells1) == cell_data(cells2)

    def test_warm_cache_identical_in_serial_mode_too(self, tmp_path):
        _, cold = run_sweep(workers=1, cache_dir=tmp_path)
        sweep, warm = run_sweep(workers=1, cache_dir=tmp_path)
        assert sweep.cache_hits == 4 and sweep.cache_misses == 0
        assert cell_data(cold) == cell_data(warm)

    def test_resume_partial_cache(self, tmp_path):
        """Deleting some entries (an interrupted sweep) recomputes only
        the missing cells and still aggregates identical numbers."""
        _, cold = run_sweep(workers=2, cache_dir=tmp_path)
        entries = sorted(tmp_path.glob("*.json"))
        assert len(entries) == 4
        for victim in entries[:2]:
            victim.unlink()
        sweep, resumed = run_sweep(workers=2, cache_dir=tmp_path)
        assert sweep.cache_hits == 2
        assert sweep.cache_misses == 2
        assert cell_data(cold) == cell_data(resumed)

    def test_poisoned_cache_recomputes(self, registry, tmp_path):
        """Corrupt entries are misses, not crashes — and get rewritten."""
        _, cold = run_sweep(workers=2, cache_dir=tmp_path)
        entries = sorted(tmp_path.glob("*.json"))
        entries[0].write_text("{ this is not json")
        entries[1].write_text(json.dumps({"v": 999, "weird": True}))
        sweep, again = run_sweep(workers=2, cache_dir=tmp_path)
        assert cell_data(cold) == cell_data(again)
        assert sweep.cache_hits == 2 and sweep.cache_misses == 2
        assert registry.aggregate("sweep_cache_corrupt")[()] == 2
        # The rewrite healed the cache.
        sweep3, _ = run_sweep(workers=2, cache_dir=tmp_path)
        assert sweep3.cache_hits == 4

    def test_use_cache_false_recomputes_but_rewrites(self, tmp_path):
        run_sweep(workers=1, cache_dir=tmp_path)
        sweep, _ = run_sweep(workers=1, cache_dir=tmp_path, use_cache=False)
        assert sweep.cache_hits == 0
        cache = ResultCache(tmp_path)
        assert len(cache) == 4

    def test_cache_key_separates_factories_and_extras(self, tmp_path):
        cache = ResultCache(tmp_path)
        k1 = cache.key_for(micro_factory, {"fast_pages": 24}, 1)
        k2 = cache.key_for(failing_factory, {"fast_pages": 24}, 1)
        k3 = cache.key_for(micro_factory, {"fast_pages": 24}, 2)
        k4 = cache.key_for(micro_factory, {"fast_pages": 24}, 1, extra={"policy": "tpp"})
        assert len({k1, k2, k3, k4}) == 4
        assert k1 == cache.key_for(micro_factory, {"fast_pages": 24}, 1)


class TestFailures:
    def test_serial_raises_typed_error(self):
        sweep = Sweep(metrics=dict(METRICS))
        with pytest.raises(SweepCellError) as exc_info:
            sweep.run(failing_factory, grid=GRID, seeds=SEEDS, workers=1)
        err = exc_info.value
        assert err.params == (("fast_pages", 24),)
        assert err.seed == 2
        assert "injected failure" in str(err)
        assert isinstance(err.__cause__, ValueError)

    def test_parallel_records_structured_failure(self):
        sweep = Sweep(metrics=dict(METRICS))
        cells = sweep.run(failing_factory, grid=GRID, seeds=SEEDS, workers=2)
        assert len(sweep.errors) == 2  # seed=2 fails in both cells
        for failure in sweep.errors:
            assert isinstance(failure, CellFailure)
            assert failure.kind == "exception"
            assert failure.error == "ValueError"
            assert failure.seed == 2
            assert "injected failure" in failure.message
            assert "failing_factory" in failure.traceback
        # Surviving seeds still aggregate; the cell carries its failures.
        for cell in cells:
            assert len(cell.failures) == 1
            assert np.isfinite(cell.mean("fthr"))

    def test_parallel_survives_worker_crash(self):
        sweep = Sweep(metrics=dict(METRICS))
        cells = sweep.run(crashing_factory, grid=GRID, seeds=SEEDS, workers=2)
        kinds = {f.kind for f in sweep.errors}
        assert kinds == {"crash"}
        assert len(sweep.errors) == 2
        assert all("13" in f.message for f in sweep.errors)
        assert all(np.isfinite(c.mean("ops")) for c in cells)

    def test_parallel_cell_timeout(self):
        sweep = Sweep(metrics=dict(METRICS))
        cells = sweep.run(
            sleeping_factory, grid={"fast_pages": [24]}, seeds=SEEDS, workers=2, timeout=5.0,
        )
        assert [f.kind for f in sweep.errors] == ["timeout"]
        assert sweep.errors[0].seed == 2
        assert np.isfinite(cells[0].mean("fthr"))  # seed 1 still aggregated

    def test_all_seeds_failed_yields_nan_cell(self):
        sweep = Sweep(metrics=dict(METRICS))
        cells = sweep.run(failing_factory, grid=GRID, seeds=[2], workers=2)
        assert all(np.isnan(c.mean("fthr")) for c in cells)
        assert len(sweep.errors) == 2


class TestSeedDerivation:
    def test_stable_and_param_sensitive(self):
        a = derive_cell_seed({"fast_pages": 24}, 1)
        assert a == derive_cell_seed({"fast_pages": 24}, 1)
        assert a == derive_cell_seed((("fast_pages", 24),), 1)  # dict/tuple agree
        assert a != derive_cell_seed({"fast_pages": 96}, 1)
        assert a != derive_cell_seed({"fast_pages": 24}, 2)
        assert 0 <= a < 2**63

    def test_derived_seeds_differential(self):
        s1 = Sweep(metrics=dict(METRICS))
        c1 = s1.run(micro_factory, grid=GRID, seeds=[1], workers=1, derived_seeds=True)
        s2 = Sweep(metrics=dict(METRICS))
        c2 = s2.run(micro_factory, grid=GRID, seeds=[1], workers=2, derived_seeds=True)
        assert cell_data(c1) == cell_data(c2)
        # And derived seeds actually change what the factory computes.
        _, raw = run_sweep(workers=1)
        assert cell_data(c1) != cell_data(raw)


class TestResultRoundTrip:
    def test_experiment_result_to_from_dict_lossless(self):
        from repro.harness import ExperimentResult

        result = micro_factory(24, seed=1)
        clone = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone.policy_name == result.policy_name
        assert clone.n_epochs == result.n_epochs
        assert clone.free_fast_pages == result.free_fast_pages
        assert clone.migration_cycles == result.migration_cycles
        assert set(clone.workloads) == set(result.workloads)
        for pid, ts in result.workloads.items():
            assert clone.workloads[pid].to_dict() == ts.to_dict()
