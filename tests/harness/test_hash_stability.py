"""Content hashes must be stable across processes and hash seeds.

Job ids, result-cache keys, and scenario spec hashes all flow through
``harness.cache.content_hash``; if any of them depended on dict
insertion order, ``PYTHONHASHSEED``, or ``repr`` addresses, dedup
would silently break between a client and a server (or between two
server restarts).  The subprocess tests run the hash under *different*
hash seeds and demand identical output.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.harness.cache import canonicalize, content_hash

SAMPLE = {
    "kind": "sweep",
    "payload": {"fast_gb": [8.0, 16.0], "seeds": [3, 1, 2], "mix": "dilemma"},
    "tags": {"b", "a", "c"},
    "blob": b"\x00\xff",
}


def hash_in_subprocess(hashseed: str) -> dict:
    """Compute reference hashes in a fresh interpreter with a given seed."""
    code = (
        "import json\n"
        "from repro.harness.cache import content_hash\n"
        "from repro.service.jobs import JobSpec\n"
        "from repro.scenario import get_scenario\n"
        "sample = {'kind': 'sweep', 'payload': {'fast_gb': [8.0, 16.0],"
        " 'seeds': [3, 1, 2], 'mix': 'dilemma'}, 'tags': {'b', 'a', 'c'},"
        " 'blob': b'\\x00\\xff'}\n"
        "print(json.dumps({\n"
        "  'sample': content_hash(sample),\n"
        "  'job': JobSpec('run', {'seed': 42}).job_id(),\n"
        "  'scenario': get_scenario('churn').content_hash(),\n"
        "}))\n"
    )
    env = {**os.environ, "PYTHONHASHSEED": hashseed,
           "PYTHONPATH": os.pathsep.join(sys.path)}
    out = subprocess.run([sys.executable, "-c", code], capture_output=True,
                         text=True, env=env, check=True)
    return json.loads(out.stdout)


def test_hashes_identical_across_hash_seeds():
    a = hash_in_subprocess("0")
    b = hash_in_subprocess("424242")
    assert a == b
    # and the parent process (whatever seed pytest runs under) agrees
    assert content_hash(SAMPLE) == a["sample"]


def test_set_order_is_canonical():
    assert content_hash({"tags": {"a", "b", "c"}}) == content_hash({"tags": {"c", "a", "b"}})


def test_dict_insertion_order_is_canonical():
    assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})


def test_int_float_distinguished_like_json():
    # json.dumps renders 1 and 1.0 differently, so the hashes differ;
    # normalization layers (JobSpec) coerce before hashing
    assert content_hash({"x": 1}) != content_hash({"x": 1.0})


def test_bytes_hash_stably():
    assert content_hash(b"\x00\x01") == content_hash(b"\x00\x01")
    assert content_hash(b"\x00\x01") != content_hash(b"\x00\x02")


def test_address_bearing_repr_rejected():
    class Opaque:
        pass

    with pytest.raises(TypeError, match="memory address"):
        content_hash({"obj": Opaque()})


def test_canonicalize_nested():
    out = canonicalize({"s": {2, 1}, "t": (1, 2), "b": b"\xff"})
    assert out == {"s": [1, 2], "t": [1, 2], "b": "ff"}
    json.dumps(out)  # canonical form must be JSON-serializable
