"""Peak-RSS reporting: ``ru_maxrss`` unit normalization.

POSIX leaves the ``ru_maxrss`` unit unspecified; Linux reports kB,
macOS reports bytes.  The bench must report kB on both, or cross-OS
baseline comparisons are 1024× off.
"""

from __future__ import annotations

from repro.harness.bench import _normalize_maxrss, peak_rss_kb


def test_linux_maxrss_is_already_kb():
    assert _normalize_maxrss(51_888, "linux") == 51_888


def test_darwin_maxrss_is_bytes():
    assert _normalize_maxrss(51_888 * 1024, "darwin") == 51_888
    assert _normalize_maxrss(1_023, "darwin") == 0  # sub-kB rounds down


def test_other_platforms_pass_through():
    # *BSDs follow the kB convention; pass through untouched.
    assert _normalize_maxrss(12_345, "freebsd14") == 12_345


def test_peak_rss_kb_is_plausible_for_this_process():
    kb = peak_rss_kb()
    # A running CPython with numpy loaded: >10 MB, <100 GB.
    assert 10_000 < kb < 100_000_000
