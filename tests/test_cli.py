"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_costs_command(capsys):
    assert main(["costs", "--cpus", "2", "32"]) == 0
    out = capsys.readouterr().out
    assert "50000" in out and "750000" in out
    assert "38.3%" in out and "76.9%" in out


def test_run_command_dilemma(capsys):
    assert main(["run", "--mix", "dilemma", "--policy", "none", "--epochs", "3", "--accesses", "1000"]) == 0
    out = capsys.readouterr().out
    assert "memcached" in out and "liblinear" in out
    assert "CFI" in out


def test_compare_command(capsys):
    rc = main([
        "compare", "--policies", "none", "uniform",
        "--mix", "dilemma", "--epochs", "3", "--accesses", "1000",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "normalized" in out
    assert "fairness" in out


def test_unknown_policy_rejected():
    with pytest.raises(SystemExit):
        main(["compare", "--policies", "bogus", "--epochs", "1"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_rejects_unknown_mix():
    with pytest.raises(SystemExit):
        main(["run", "--mix", "bogus"])


def test_run_json_output(capsys):
    assert main([
        "run", "--mix", "dilemma", "--policy", "none",
        "--epochs", "3", "--accesses", "1000", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["policy"] == "none"
    assert payload["mix"] == "dilemma"
    assert "cfi" in payload
    assert set(payload["workloads"]) == {"memcached", "liblinear"}
    assert len(payload["workloads"]["memcached"]["ops"]) == 3


def test_compare_json_output(capsys):
    assert main([
        "compare", "--policies", "none", "uniform",
        "--mix", "dilemma", "--epochs", "3", "--accesses", "1000", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["fairness_cfi"]) == {"none", "uniform"}
    assert set(payload["policies"]) == {"none", "uniform"}
    assert "memcached" in payload["normalized_perf"]


def test_run_trace_then_summarize(capsys, tmp_path):
    from repro.obs.trace import get_tracer

    trace_path = tmp_path / "t.json"
    assert main([
        "run", "--mix", "dilemma", "--policy", "vulcan",
        "--epochs", "4", "--accesses", "1000", "--trace", str(trace_path),
    ]) == 0
    assert not get_tracer().enabled  # CLI turns tracing back off
    capsys.readouterr()
    doc = json.loads(trace_path.read_text())
    assert doc["traceEvents"]

    assert main(["trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "migration cycles by phase" in out
    assert "TLB shootdown scope histogram" in out
    assert "CBFRP credit timeline" in out


def test_compare_trace_writes_per_policy_files(capsys, tmp_path):
    trace_path = tmp_path / "c.json"
    assert main([
        "compare", "--policies", "tpp", "vulcan",
        "--mix", "dilemma", "--epochs", "3", "--accesses", "800",
        "--trace", str(trace_path),
    ]) == 0
    assert (tmp_path / "c.tpp.json").exists()
    assert (tmp_path / "c.vulcan.json").exists()


def test_trace_command_rejects_empty_file(tmp_path, capsys):
    empty = tmp_path / "empty.json"
    empty.write_text("")
    assert main(["trace", str(empty)]) == 1


SWEEP_BASE = [
    "sweep", "--policy", "none", "--mix", "dilemma",
    "--epochs", "3", "--accesses", "800",
    "--fast-gb", "4", "8", "--seeds", "1",
]


def test_sweep_command_table(capsys):
    assert main(SWEEP_BASE) == 0
    out = capsys.readouterr().out
    assert "fast_gb" in out and "CFI" in out
    assert "fast-tier sweep" in out


def test_sweep_command_json_parallel(capsys):
    assert main([*SWEEP_BASE, "--workers", "2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [c["params"]["fast_gb"] for c in payload["cells"]] == [4.0, 8.0]
    for cell in payload["cells"]:
        assert set(cell["metrics"]) == {"mean_ops", "cfi"}
        assert cell["failures"] == []
    assert payload["cache"] == {"hits": 0, "misses": 0}


def test_sweep_cache_and_resume(capsys, tmp_path):
    cache = tmp_path / "cache"
    assert main([*SWEEP_BASE, "--cache-dir", str(cache), "--json"]) == 0
    first = json.loads(capsys.readouterr().out)
    assert first["cache"] == {"hits": 0, "misses": 2}

    # --resume against the warm cache re-runs zero cells...
    assert main([*SWEEP_BASE, "--cache-dir", str(cache), "--resume", "--json"]) == 0
    captured = capsys.readouterr()
    second = json.loads(captured.out)
    assert second["cache"] == {"hits": 2, "misses": 0}
    assert "2 restored, 0 computed" in captured.err
    # ...and reproduces the cold numbers exactly.
    assert second["cells"] == first["cells"]


def test_sweep_resume_requires_existing_cache(tmp_path):
    import pytest

    with pytest.raises(SystemExit):
        main([*SWEEP_BASE, "--resume"])
    with pytest.raises(SystemExit):
        main([*SWEEP_BASE, "--cache-dir", str(tmp_path / "missing"), "--resume"])
    with pytest.raises(SystemExit):
        main([*SWEEP_BASE, "--cache-dir", str(tmp_path), "--no-cache", "--resume"])


def test_sweep_no_cache_ignores_cache_dir(capsys, tmp_path):
    assert main([*SWEEP_BASE, "--cache-dir", str(tmp_path / "c"), "--no-cache", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cache"] == {"hits": 0, "misses": 0}
    assert not (tmp_path / "c").exists()


# -- scenario subcommand ---------------------------------------------------------

def _tiny_spec_dict():
    return {
        "name": "tiny",
        "n_epochs": 6,
        "seed": 3,
        "policy": "vulcan",
        "workloads": [
            # populate_tier 1 forces promotion traffic even though the
            # footprints fit in fast, so the armed faults get rolled.
            {"key": "a", "kind": "memcached", "service": "LC", "rss_pages": 80,
             "n_threads": 2, "accesses_per_thread": 500, "populate_tier": 1},
            {"key": "b", "kind": "liblinear", "service": "BE", "rss_pages": 90,
             "n_threads": 2, "accesses_per_thread": 500, "populate_tier": 1},
        ],
        "events": [
            {"epoch": 1, "action": "faults_set",
             "params": {"aborted_sync": 0.5, "lost_async": 0.5}},
            {"epoch": 3, "action": "depart", "target": "b"},
        ],
    }


@pytest.fixture
def tiny_spec_file(tmp_path):
    p = tmp_path / "tiny.json"
    p.write_text(json.dumps(_tiny_spec_dict()))
    return str(p)


def test_scenario_list(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("churn", "flash_crowd", "degraded_tier", "noisy_neighbor_restart", "fault_storm"):
        assert name in out


def test_scenario_run_spec_file_table(tiny_spec_file, capsys):
    assert main(["scenario", "run", "--spec", tiny_spec_file]) == 0
    out = capsys.readouterr().out
    assert "scenario=tiny" in out
    assert "1 departures" in out
    assert "fairness under churn" in out


def test_scenario_run_json_and_check(tiny_spec_file, capsys):
    assert main(["scenario", "run", "--spec", tiny_spec_file, "--json", "--check"]) == 0
    captured = capsys.readouterr()
    payload = json.loads(captured.out)
    assert payload["spec_name"] == "tiny"
    assert payload["check"]["passed"] is True
    assert len(payload["departures"]) == 1
    assert payload["fairness_under_churn"]["windows"]
    assert "all scenario checks passed" in captured.err


def test_scenario_run_trace_export(tiny_spec_file, tmp_path, capsys):
    trace = tmp_path / "t.trace.json"
    assert main(["scenario", "run", "--spec", tiny_spec_file, "--trace", str(trace)]) == 0
    capsys.readouterr()
    events = json.loads(trace.read_text())["traceEvents"]
    assert any(e.get("cat") == "workload_depart" for e in events)


def test_scenario_run_rejects_name_and_spec_together(tiny_spec_file):
    with pytest.raises(SystemExit):
        main(["scenario", "run", "churn", "--spec", tiny_spec_file])
    with pytest.raises(SystemExit):
        main(["scenario", "run"])


def test_scenario_run_rejects_invalid_spec(tmp_path):
    bad = _tiny_spec_dict()
    bad["events"][1]["target"] = "nope"
    p = tmp_path / "bad.json"
    p.write_text(json.dumps(bad))
    with pytest.raises(SystemExit, match="invalid scenario"):
        main(["scenario", "run", "--spec", str(p)])


def test_scenario_run_unknown_name_rejected():
    with pytest.raises(SystemExit):
        main(["scenario", "run", "nonesuch"])


def test_bench_scenario_flag_wired():
    args = build_parser().parse_args(["bench", "--scenario", "churn"])
    assert args.scenario == "churn"


def test_bench_unknown_scenario_rejected():
    with pytest.raises((SystemExit, KeyError)):
        main(["bench", "--scenario", "nonesuch"])


# -- fleet ------------------------------------------------------------------------


def _tiny_fleet_dict():
    return {
        "name": "tinyfleet",
        "n_rounds": 2,
        "epochs_per_round": 2,
        "seed": 5,
        "policy": "vulcan",
        "placer": "credit-balance",
        "nodes": [
            {"node_id": "n0", "fast_gb": 4.0},
            {"node_id": "n1", "fast_gb": 4.0},
            {"node_id": "n2", "fast_gb": 4.0},
        ],
        "workloads": [
            {"key": "a", "kind": "memcached", "service": "LC", "rss_pages": 120,
             "n_threads": 1, "accesses_per_thread": 400},
            {"key": "b", "kind": "liblinear", "service": "BE", "rss_pages": 100,
             "n_threads": 1, "accesses_per_thread": 400},
            {"key": "c", "kind": "microbench", "service": "BE", "rss_pages": 80,
             "n_threads": 1, "accesses_per_thread": 400},
        ],
        "events": [
            {"round": 1, "action": "node_drain", "node": "n0"},
        ],
    }


@pytest.fixture
def tiny_fleet_file(tmp_path):
    p = tmp_path / "tinyfleet.json"
    p.write_text(json.dumps(_tiny_fleet_dict()))
    return str(p)


def test_fleet_list(capsys):
    assert main(["fleet", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("balanced_trio", "drain_rebalance", "flash_crowd_fleet"):
        assert name in out


def test_fleet_run_spec_file_table(tiny_fleet_file, capsys):
    assert main(["fleet", "run", "--spec", tiny_fleet_file]) == 0
    out = capsys.readouterr().out
    assert "fleet=tinyfleet" in out
    assert "placer=credit-balance" in out
    assert "fleet CFI" in out


def test_fleet_run_json_and_check(tiny_fleet_file, capsys):
    assert main(["fleet", "run", "--spec", tiny_fleet_file, "--json", "--check"]) == 0
    captured = capsys.readouterr()
    payload = json.loads(captured.out)
    assert payload["summary"]["fleet"] == "tinyfleet"
    assert payload["summary"]["evacuations"] == 1
    assert "workers_used" not in payload
    assert len(payload["rounds"]) == 2
    assert "all fleet checks passed" in captured.err


def test_fleet_run_trace_export(tiny_fleet_file, tmp_path, capsys):
    trace = tmp_path / "f.trace.json"
    assert main(["fleet", "run", "--spec", tiny_fleet_file, "--trace", str(trace)]) == 0
    capsys.readouterr()
    events = json.loads(trace.read_text())["traceEvents"]
    cats = {e.get("cat", "") for e in events}
    assert any(c.startswith("fleet_") for c in cats)


def test_fleet_run_rejects_name_and_spec_together(tiny_fleet_file):
    with pytest.raises(SystemExit):
        main(["fleet", "run", "balanced_trio", "--spec", tiny_fleet_file])
    with pytest.raises(SystemExit):
        main(["fleet", "run"])


def test_fleet_run_rejects_invalid_spec(tmp_path):
    bad = _tiny_fleet_dict()
    bad["events"].append({"round": 1, "action": "node_drain", "node": "n1"})
    bad["events"].append({"round": 1, "action": "node_drain", "node": "n2"})
    p = tmp_path / "bad.json"
    p.write_text(json.dumps(bad))
    with pytest.raises(SystemExit, match="invalid fleet spec"):
        main(["fleet", "run", "--spec", str(p)])


def test_fleet_run_unknown_name_rejected():
    with pytest.raises(SystemExit):
        main(["fleet", "run", "nonesuch"])


def test_fuzz_fleet_flag_wired():
    args = build_parser().parse_args(["fuzz", "--fleet", "--runs", "3"])
    assert args.fleet is True and args.runs == 3


def test_bench_fleet_writes_payload_and_check_round_trips(tmp_path, capsys):
    out_path = tmp_path / "BENCH_fleet.json"
    assert main(["bench", "--fleet", "--quick", "--output", str(out_path)]) == 0
    capsys.readouterr()
    payload = json.loads(out_path.read_text())
    assert payload["fleet"]["scenario"] == "drain_rebalance"
    assert payload["timing"]["node_epochs_per_sec"] > 0
    assert payload["simulated"]["evacuations"] >= 1
    # a fresh run must pass --check against the file it just wrote
    assert main([
        "bench", "--fleet", "--quick",
        "--output", str(tmp_path / "again.json"), "--check", str(out_path),
    ]) == 0
