"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_costs_command(capsys):
    assert main(["costs", "--cpus", "2", "32"]) == 0
    out = capsys.readouterr().out
    assert "50000" in out and "750000" in out
    assert "38.3%" in out and "76.9%" in out


def test_run_command_dilemma(capsys):
    assert main(["run", "--mix", "dilemma", "--policy", "none", "--epochs", "3", "--accesses", "1000"]) == 0
    out = capsys.readouterr().out
    assert "memcached" in out and "liblinear" in out
    assert "CFI" in out


def test_compare_command(capsys):
    rc = main([
        "compare", "--policies", "none", "uniform",
        "--mix", "dilemma", "--epochs", "3", "--accesses", "1000",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "normalized" in out
    assert "fairness" in out


def test_unknown_policy_rejected():
    with pytest.raises(SystemExit):
        main(["compare", "--policies", "bogus", "--epochs", "1"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_rejects_unknown_mix():
    with pytest.raises(SystemExit):
        main(["run", "--mix", "bogus"])
