"""The package's public API surface stays importable and coherent."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), f"missing export {name}"


def test_policy_registry_exposed():
    assert "vulcan" in repro.POLICY_REGISTRY
    assert "memtis" in repro.POLICY_REGISTRY


def test_docstring_quickstart_runs():
    """The README/docstring snippet must actually work (short run)."""
    from repro.harness import ColocationExperiment
    from repro.sim.config import SimulationConfig
    from repro.workloads.mixes import paper_colocation_mix

    sim = SimulationConfig(epoch_seconds=2.0)
    exp = ColocationExperiment(
        "vulcan", paper_colocation_mix(sim, accesses_per_thread=500), sim=sim
    )
    result = exp.run(n_epochs=2)
    assert result.by_name("memcached").mean_ops() > 0


def test_subpackages_import_cleanly():
    import repro.core
    import repro.harness
    import repro.machine
    import repro.metrics
    import repro.mm
    import repro.policies
    import repro.profiling
    import repro.sim
    import repro.workloads

    assert repro.core and repro.mm and repro.policies
