"""Policy behaviours on a small co-location world.

These run the real harness at miniature scale: tiny tiers, short
epochs, two synthetic workloads — enough for each policy's signature
behaviour to be observable in seconds.
"""

import numpy as np
import pytest

from repro.core.classify import ServiceClass
from repro.harness import ColocationExperiment
from repro.policies import POLICY_REGISTRY
from repro.policies.base import TieringPolicy
from repro.sim.config import MachineConfig, SimulationConfig, TierConfig
from repro.workloads.base import WorkloadSpec
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.microbench import MicrobenchWorkload


def tiny_machine(fast_pages=256, slow_pages=2048, page_unit=10**6) -> MachineConfig:
    return MachineConfig(
        n_cores=16,
        fast=TierConfig(name="fast", capacity_bytes=fast_pages * page_unit, load_latency_ns=70.0, bandwidth_gbps=205.0),
        slow=TierConfig(name="slow", capacity_bytes=slow_pages * page_unit, load_latency_ns=162.0, bandwidth_gbps=25.0),
    )


def tiny_sim() -> SimulationConfig:
    return SimulationConfig(page_unit_bytes=10**6, epoch_seconds=0.5)


def hot_workload(name="hot", rss=400, service=ServiceClass.LC, start=0, seed=0):
    return MemcachedWorkload(
        WorkloadSpec(name=name, service=service, rss_pages=rss, n_threads=2, start_epoch=start, accesses_per_thread=3000),
        seed=seed,
    )


def scan_workload(name="scan", rss=800, start=0, seed=1):
    return MicrobenchWorkload(
        WorkloadSpec(name=name, service=ServiceClass.BE, rss_pages=rss, n_threads=2, start_epoch=start, accesses_per_thread=6000),
        seed=seed,
        wss_pages=rss,
        zipf_skew=0.1,
    )


def run_policy(policy_name, workloads, epochs=12, seed=3):
    exp = ColocationExperiment(
        policy_name, workloads, machine_config=tiny_machine(), sim=tiny_sim(), seed=seed,
        cores_per_workload=4,
    )
    return exp.run(epochs), exp


def test_registry_complete():
    assert set(POLICY_REGISTRY) == {"none", "uniform", "tpp", "memtis", "nomad", "vulcan"}
    for cls in POLICY_REGISTRY.values():
        assert issubclass(cls, TieringPolicy)


def test_none_policy_never_migrates():
    res, exp = run_policy("none", [hot_workload()])
    ts = res.by_name("hot")
    assert sum(ts.promotions) == 0
    assert sum(ts.demotions) == 0


def test_uniform_policy_confines_each_workload_to_share():
    res, exp = run_policy("uniform", [hot_workload("a", rss=400), hot_workload("b", rss=400, seed=9)])
    share = exp.allocator.tiers[0].total // 2
    for name in ("a", "b"):
        assert res.by_name(name).fast_pages[-1] <= share + 1


@pytest.mark.parametrize("policy", ["tpp", "memtis", "nomad", "vulcan"])
def test_dynamic_policies_promote_hot_pages(policy):
    # Workload starts entirely in slow memory (fast pre-filled by a
    # placeholder squatter that never runs): here simply start the hot
    # workload after a scanner has taken the fast tier.
    res, exp = run_policy(policy, [scan_workload(start=0), hot_workload(start=2)], epochs=14)
    ts = res.by_name("hot")
    assert sum(ts.promotions) > 0, f"{policy} never promoted"
    # Its fast-tier hit ratio must improve from its first active epoch.
    assert ts.fthr_true[-1] > ts.fthr_true[0]


def test_memtis_absolute_counts_favor_intense_scanner():
    """The cold-page dilemma in miniature: under Memtis the saturating
    scanner ends up holding most of the fast tier."""
    res, _ = run_policy("memtis", [hot_workload(rss=400), scan_workload(rss=1600)], epochs=14)
    hot_fast = res.by_name("hot").fast_pages[-1]
    scan_fast = res.by_name("scan").fast_pages[-1]
    assert scan_fast > hot_fast


def test_vulcan_protects_lc_better_than_memtis():
    wl = lambda: [hot_workload(rss=400, service=ServiceClass.LC), scan_workload(rss=1600)]
    res_v, _ = run_policy("vulcan", wl(), epochs=14)
    res_m, _ = run_policy("memtis", wl(), epochs=14)
    fthr_v = np.mean(res_v.by_name("hot").fthr_true[-4:])
    fthr_m = np.mean(res_m.by_name("hot").fthr_true[-4:])
    assert fthr_v >= fthr_m - 0.05


def test_vulcan_exposes_qos_introspection():
    res, exp = run_policy("vulcan", [hot_workload()], epochs=6)
    ts = res.by_name("hot")
    assert any(g > 0 for g in ts.gpt)
    assert any(q > 0 for q in ts.quota)
    assert ts.fthr_policy[-1] >= 0.0


def test_vulcan_uses_replicated_tables_baselines_do_not():
    _, exp_v = run_policy("vulcan", [hot_workload()], epochs=2)
    _, exp_t = run_policy("tpp", [hot_workload()], epochs=2)
    space_v = next(iter(exp_v._spaces.values()))
    space_t = next(iter(exp_t._spaces.values()))
    assert space_v.process.repl.enabled
    assert not space_t.process.repl.enabled


def test_sync_policies_stall_more_than_transactional():
    wl = lambda: [scan_workload(start=0), hot_workload(start=2)]
    _, exp_tpp = run_policy("tpp", wl(), epochs=12)
    _, exp_nomad = run_policy("nomad", wl(), epochs=12)
    stall_tpp = sum(rt.engine.stats.stall_cycles for rt in exp_tpp.policy.workloads.values())
    stall_nomad = sum(rt.engine.stats.stall_cycles for rt in exp_nomad.policy.workloads.values())
    moved_tpp = sum(rt.engine.stats.pages_moved for rt in exp_tpp.policy.workloads.values())
    moved_nomad = sum(rt.engine.stats.pages_moved for rt in exp_nomad.policy.workloads.values())
    if moved_tpp and moved_nomad:
        assert stall_nomad / moved_nomad < stall_tpp / moved_tpp


def test_vulcan_engines_use_optimized_flags():
    _, exp = run_policy("vulcan", [hot_workload()], epochs=2)
    rt = next(iter(exp.policy.workloads.values()))
    assert rt.engine.flags.opt_prep and rt.engine.flags.opt_tlb
    _, exp_b = run_policy("memtis", [hot_workload()], epochs=2)
    rt_b = next(iter(exp_b.policy.workloads.values()))
    assert not rt_b.engine.flags.opt_prep and not rt_b.engine.flags.opt_tlb
