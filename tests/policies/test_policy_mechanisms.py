"""Per-policy mechanism details: watermarks, global thresholds, shadows."""

import numpy as np
import pytest

from repro.core.classify import ServiceClass
from repro.harness import ColocationExperiment
from repro.sim.config import MachineConfig, SimulationConfig, TierConfig
from repro.workloads.base import WorkloadSpec
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.microbench import MicrobenchWorkload

UNIT = 10**6


def machine(fast=128, slow=1024):
    return MachineConfig(
        n_cores=16,
        fast=TierConfig(name="fast", capacity_bytes=fast * UNIT, load_latency_ns=70.0, bandwidth_gbps=205.0),
        slow=TierConfig(name="slow", capacity_bytes=slow * UNIT, load_latency_ns=162.0, bandwidth_gbps=25.0),
    )


def sim():
    return SimulationConfig(page_unit_bytes=UNIT, epoch_seconds=0.5)


def hot(name="hot", rss=200, start=0, seed=0, populate=0):
    return MemcachedWorkload(
        WorkloadSpec(name=name, service=ServiceClass.LC, rss_pages=rss, n_threads=2,
                     start_epoch=start, accesses_per_thread=3000, populate_tier=populate),
        seed=seed,
    )


def run(policy, wls, epochs=10, **kw):
    exp = ColocationExperiment(policy, wls, machine_config=machine(), sim=sim(),
                               seed=1, cores_per_workload=4, **kw)
    return exp.run(epochs), exp


class TestTpp:
    def test_watermark_demotion_engages_when_tier_full(self):
        # RSS fills the fast tier at admission; every epoch the reclaim
        # path frees the high-watermark's worth, which promotions then
        # consume — the TPP churn cycle.
        res, exp = run("tpp", [hot(rss=200)])
        tier = exp.allocator.tiers[0]
        demos = sum(res.by_name("hot").demotions)
        assert demos >= tier.high_watermark  # reclaim ran at least once
        assert sum(res.by_name("hot").promotions) > 0  # refilled after

    def test_promotions_are_synchronous(self):
        res, exp = run("tpp", [hot(rss=200, populate=1)])
        rt = next(iter(exp.policy.workloads.values()))
        if rt.engine.stats.promotions:
            assert rt.engine.stats.stall_cycles > 0
            assert rt.engine.stats.retries == 0  # sync never retries

    def test_hint_fault_costs_hit_application(self):
        _, exp = run("tpp", [hot(rss=200)])
        rt = next(iter(exp.policy.workloads.values()))
        assert rt.profiler.stats.app_overhead_cycles > 0


class TestMemtis:
    def test_reserve_keeps_headroom(self):
        res, exp = run("memtis", [hot(rss=400)])
        used = exp.allocator.used_frames(0)
        assert used <= exp.allocator.tiers[0].total  # trivially
        # Hot set far below capacity: no pointless fill beyond hot pages.
        assert sum(res.by_name("hot").promotions) >= 0

    def test_global_threshold_capacity_bound(self):
        """With two identical workloads, the global hot set never exceeds
        the reserve-adjusted capacity."""
        res, exp = run("memtis", [hot("a", rss=150), hot("b", rss=150, seed=5)], epochs=12)
        total_fast = sum(ts.fast_pages[-1] for ts in res.workloads.values())
        assert total_fast <= exp.allocator.tiers[0].total

    def test_migrations_are_transactional(self):
        _, exp = run("memtis", [hot(rss=300, populate=1)])
        rt = next(iter(exp.policy.workloads.values()))
        if rt.engine.stats.promotions:
            # Async path: stalls only from commit windows / fallbacks,
            # far below one sync copy per page.
            from repro.mm.migration_costs import MigrationCostModel

            per_page_stall = rt.engine.stats.stall_cycles / max(rt.engine.stats.pages_moved, 1)
            assert per_page_stall < MigrationCostModel().batch_copy_cycles(1)


class TestNomad:
    def test_promotions_leave_shadows(self):
        _, exp = run("nomad", [hot(rss=300, populate=1)])
        rt = next(iter(exp.policy.workloads.values()))
        if rt.engine.stats.promotions:
            assert rt.shadow is not None
            assert rt.shadow.stats.retained > 0

    def test_shadow_demotions_avoid_copies(self):
        # Force churn: tiny fast tier, heavy promotion + watermark demotion.
        wl = MicrobenchWorkload(
            WorkloadSpec(name="churn", service=ServiceClass.BE, rss_pages=400,
                         n_threads=2, accesses_per_thread=4000, populate_tier=1),
            seed=0, wss_pages=400, zipf_skew=0.5,
        )
        exp = ColocationExperiment("nomad", [wl], machine_config=machine(fast=64),
                                   sim=sim(), seed=1, cores_per_workload=4)
        exp.run(12)
        rt = next(iter(exp.policy.workloads.values()))
        if rt.engine.stats.demotions > 20:
            assert rt.engine.stats.shadow_remaps > 0


class TestUniform:
    def test_shares_are_static_across_demand_shifts(self):
        res, exp = run("uniform", [hot("a", rss=300), hot("b", rss=60, seed=9)], epochs=10)
        share = exp.allocator.tiers[0].total // 2
        # Even though 'b' barely needs memory, 'a' never exceeds the share.
        assert res.by_name("a").fast_pages[-1] <= share + 1


class TestVulcanDetails:
    def test_quota_follows_demand_shift(self):
        """When a second workload arrives, Vulcan reallocates; the solo
        workload's quota shrinks from all-of-fast toward its needs."""
        res, exp = run("vulcan", [hot("a", rss=300), hot("b", rss=300, seed=5, start=3)], epochs=14)
        a = res.by_name("a")
        assert a.fast_pages[0] >= 100  # had the tier to itself
        assert a.fast_pages[-1] < a.fast_pages[0]
        b = res.by_name("b")
        assert b.fast_pages[-1] > 0  # latecomer got served

    def test_credits_flow_on_reallocation(self):
        _, exp = run("vulcan", [hot("a", rss=300), hot("b", rss=300, seed=5, start=3)], epochs=14)
        credits = exp.policy.daemon.credits.credits
        assert len(credits) == 2
        from repro.core.cbfrp import INITIAL_CREDITS

        assert sum(credits.values()) == 2 * INITIAL_CREDITS  # zero-sum
