"""Tracing must never perturb the simulation.

Two guarantees: (1) a traced run emits a bit-identical event stream on
the same seed — cycle timestamps only, no wall clock anywhere; (2) a
traced run produces exactly the numbers an untraced run produces, so
figure benchmarks are unaffected by observability.
"""

from __future__ import annotations

import numpy as np

from repro.harness import ColocationExperiment
from repro.obs.trace import get_tracer
from repro.sim.config import SimulationConfig
from repro.workloads.mixes import dilemma_pair


def run_once(*, seed: int = 11, epochs: int = 5):
    sim = SimulationConfig(epoch_seconds=0.5)
    mix = dilemma_pair(sim, seed=seed, accesses_per_thread=1500)
    exp = ColocationExperiment("vulcan", mix, sim=sim, seed=seed)
    return exp.run(epochs)


def test_same_seed_traced_runs_emit_identical_streams():
    tracer = get_tracer()
    try:
        tracer.enable()
        run_once()
        first = tracer.events()
        tracer.enable()  # fresh buffer + clock
        run_once()
        second = tracer.events()
    finally:
        tracer.disable()
        tracer.reset()
    assert len(first) == len(second) > 0
    assert first == second  # TraceEvent is a frozen dataclass: deep equality


def test_tracing_does_not_change_results():
    plain = run_once()
    tracer = get_tracer()
    try:
        tracer.enable()
        traced = run_once()
    finally:
        tracer.disable()
        tracer.reset()
    for pid, ts in plain.workloads.items():
        other = traced.workloads[pid]
        assert ts.ops == other.ops
        assert ts.fast_pages == other.fast_pages
        assert ts.fthr_true == other.fthr_true
        assert ts.promotions == other.promotions
        assert ts.demotions == other.demotions
    assert np.array_equal(plain.migration_cycles, traced.migration_cycles)


def test_prep_phase_routed_through_charge():
    """Satellite regression: prep cycles show in phase_cycles *and* in
    total_cycles exactly once, via the PREP enum member."""
    from repro.mm.migration import MigrationPhase, MigrationStats

    stats = MigrationStats()
    assert "prep" in stats.phase_cycles  # enum member seeds the dict
    stats.charge(MigrationPhase.PREP, 123.0)
    assert stats.phase_cycles["prep"] == 123.0
    assert stats.total_cycles == 123.0
