"""Ring buffer bounds, overflow and ordering."""

import pytest

from repro.obs.events import EventKind, RingBuffer, TraceEvent


def ev(i: int) -> TraceEvent:
    return TraceEvent(kind=EventKind.INSTANT, name=f"e{i}", ts=float(i))


def test_append_and_order():
    buf = RingBuffer(capacity=8)
    for i in range(5):
        buf.append(ev(i))
    assert len(buf) == 5
    assert [e.name for e in buf] == ["e0", "e1", "e2", "e3", "e4"]
    assert buf.dropped == 0
    assert buf.appended == 5


def test_overflow_drops_oldest():
    buf = RingBuffer(capacity=4)
    for i in range(10):
        buf.append(ev(i))
    assert len(buf) == 4
    assert buf.dropped == 6
    assert buf.appended == 10
    # Only the newest `capacity` events survive, oldest first.
    assert [e.name for e in buf] == ["e6", "e7", "e8", "e9"]


def test_overflow_exactly_at_capacity():
    buf = RingBuffer(capacity=3)
    for i in range(3):
        buf.append(ev(i))
    assert len(buf) == 3 and buf.dropped == 0
    buf.append(ev(3))
    assert len(buf) == 3 and buf.dropped == 1
    assert [e.name for e in buf] == ["e1", "e2", "e3"]


def test_clear_resets_everything():
    buf = RingBuffer(capacity=2)
    for i in range(5):
        buf.append(ev(i))
    buf.clear()
    assert len(buf) == 0
    assert buf.dropped == 0
    assert buf.snapshot() == []
    buf.append(ev(7))
    assert [e.name for e in buf] == ["e7"]


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        RingBuffer(capacity=0)
