"""Metrics registry: labels, aggregation, zero-cost disabled path."""

import pytest

from repro.obs.metrics import MetricsRegistry, _NullInstrument


def test_counter_labels_are_distinct_series():
    reg = MetricsRegistry(enabled=True)
    reg.counter("pages_moved", workload="a", tier="fast").inc(3)
    reg.counter("pages_moved", workload="a", tier="slow").inc(2)
    reg.counter("pages_moved", workload="b", tier="fast").inc(5)
    series = reg.series("pages_moved")
    assert len(series) == 3
    assert series[(("tier", "fast"), ("workload", "a"))] == 3


def test_aggregate_collapses_ungrouped_labels():
    reg = MetricsRegistry(enabled=True)
    reg.counter("pages_moved", workload="a", tier="fast").inc(3)
    reg.counter("pages_moved", workload="a", tier="slow").inc(2)
    reg.counter("pages_moved", workload="b", tier="fast").inc(5)
    assert reg.aggregate("pages_moved") == {(): 10.0}
    by_tier = reg.aggregate("pages_moved", "tier")
    assert by_tier[(("tier", "fast"),)] == 8.0
    assert by_tier[(("tier", "slow"),)] == 2.0
    by_workload = reg.aggregate("pages_moved", "workload")
    assert by_workload[(("workload", "a"),)] == 5.0


def test_same_labels_return_same_instrument():
    reg = MetricsRegistry(enabled=True)
    a = reg.counter("x", tier=0)
    b = reg.counter("x", tier="0")  # values stringified: same series
    assert a is b
    a.inc()
    assert b.value == 1.0


def test_gauge_and_histogram():
    reg = MetricsRegistry(enabled=True)
    g = reg.gauge("quota", workload="a")
    g.set(128)
    g.dec(28)
    assert reg.series("quota") == {(("workload", "a"),): 100.0}
    h = reg.histogram("scope", bounds=(1, 2, 8))
    for v in (1, 1, 2, 5, 100):
        h.observe(v)
    assert h.total == 5
    assert h.counts == [2, 1, 1, 1]  # <=1, <=2, <=8, +Inf
    assert h.sum == 109


def test_disabled_registry_is_noop_and_allocates_nothing():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("x", tier="fast")
    assert isinstance(c, _NullInstrument)
    # All null instruments are the same shared object.
    assert c is reg.gauge("y") is reg.histogram("z")
    c.inc()
    reg.gauge("y").set(5)
    reg.histogram("z").observe(1)
    assert reg.collect() == {"counters": [], "gauges": [], "histograms": []}


def test_counter_rejects_negative():
    reg = MetricsRegistry(enabled=True)
    with pytest.raises(ValueError):
        reg.counter("x").inc(-1)


def test_collect_is_json_shaped():
    reg = MetricsRegistry(enabled=True)
    reg.counter("c", a=1).inc()
    reg.gauge("g").set(2)
    reg.histogram("h").observe(3)
    dump = reg.collect()
    assert dump["counters"][0] == {"name": "c", "labels": {"a": "1"}, "value": 1.0}
    assert dump["gauges"][0]["value"] == 2.0
    assert dump["histograms"][0]["total"] == 1
