"""Tracer API, Chrome/JSONL export round-trips, and the summary digest."""

from __future__ import annotations

import json

from repro.harness import ColocationExperiment
from repro.obs.events import EventKind, TraceEvent
from repro.obs.export import (
    read_trace,
    summarize,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim.config import SimulationConfig
from repro.workloads.mixes import dilemma_pair


def traced_run(policy: str = "vulcan", epochs: int = 5, seed: int = 3):
    sim = SimulationConfig(epoch_seconds=0.5)
    mix = dilemma_pair(sim, seed=seed, accesses_per_thread=1500)
    exp = ColocationExperiment(policy, mix, sim=sim, seed=seed)
    return exp.run(epochs)


# -- tracer API ---------------------------------------------------------------


def test_span_measures_advanced_cycles(tracer):
    with tracer.span("outer", pid=7, pages=3):
        tracer.advance(100)
        tracer.advance(50)
    (ev,) = tracer.events()
    assert ev.kind is EventKind.SPAN
    assert ev.name == "outer" and ev.pid == 7
    assert ev.dur == 150
    assert ev.args == {"pages": 3}


def test_clock_never_goes_backwards(tracer):
    tracer.set_time(1000)
    tracer.set_time(400)  # epoch re-anchor below current time: ignored
    assert tracer.now == 1000
    tracer.advance(-5)  # negative charges are ignored
    assert tracer.now == 1000


def test_disabled_tracer_records_nothing():
    from repro.obs.trace import get_tracer

    t = get_tracer()
    assert not t.enabled
    t.instant("x")
    t.emit(EventKind.EPOCH, "epoch")
    with t.span("y"):
        pass
    assert t.events() == []


# -- export round-trips -------------------------------------------------------


def test_chrome_trace_round_trips_and_ts_monotonic(tracer, tmp_path):
    res = traced_run()
    path = tmp_path / "t.json"
    names = {ts.pid: ts.name for ts in res.workloads.values()}
    n = write_chrome_trace(tracer.events(), path, process_names=names)
    assert n == len(tracer.events()) > 100

    doc = json.loads(path.read_text())  # round-trips through json.loads
    events = doc["traceEvents"]
    assert doc["otherData"]["time_unit"] == "cycles"
    # Monotonically non-decreasing timestamps.
    ts = [e["ts"] for e in events]
    assert all(a <= b for a, b in zip(ts, ts[1:]))
    # Metadata names the workload processes.
    meta = {e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"}
    assert set(names.values()) <= set(meta.values())
    # Spans are complete events with durations.
    spans = [e for e in events if e["ph"] == "X"]
    assert spans and all("dur" in e for e in spans)


def test_chrome_trace_reader_recovers_events(tracer, tmp_path):
    traced_run()
    original = tracer.events()
    path = tmp_path / "t.json"
    write_chrome_trace(original, path)
    recovered = read_trace(path)
    assert len(recovered) == len(original)
    assert {e.kind for e in recovered} == {e.kind for e in original}
    # Cycle totals by phase survive the round trip exactly.
    def phase_totals(events):
        out = {}
        for e in events:
            if e.kind is EventKind.MIGRATION_PHASE:
                out[e.args["phase"]] = out.get(e.args["phase"], 0.0) + e.dur
        return out

    assert phase_totals(recovered) == phase_totals(original)


def test_jsonl_round_trip(tracer, tmp_path):
    traced_run(epochs=3)
    original = tracer.events()
    path = tmp_path / "t.jsonl"
    assert write_jsonl(original, path) == len(original)
    recovered = read_trace(path)
    assert recovered == original


def test_instant_pid_none_round_trips_as_none(tmp_path):
    events = [TraceEvent(kind=EventKind.TLB_SHOOTDOWN, name="shootdown", ts=5.0,
                         args={"n_targets": 2, "process_wide": False})]
    path = tmp_path / "one.json"
    write_chrome_trace(events, path)
    (back,) = read_trace(path)
    assert back.pid is None
    assert back.args["n_targets"] == 2


# -- summary ------------------------------------------------------------------


def test_summary_names_the_required_sections(tracer, tmp_path):
    traced_run()
    path = tmp_path / "t.json"
    write_chrome_trace(tracer.events(), path)
    text = summarize(read_trace(path))
    assert "migration cycles by phase" in text
    assert "prep" in text and "shootdown" in text and "copy" in text
    assert "TLB shootdown scope histogram" in text
    assert "CBFRP credit timeline" in text
    assert "queue activity" in text
    # Workload names resolved from epoch events, not raw pids.
    assert "memcached" in text


def test_summary_fleet_activity_section(tracer):
    from repro.fleet import FleetEvent, FleetSpec, NodeDef, run_fleet
    from repro.scenario.spec import WorkloadDef

    spec = FleetSpec(
        name="trace-fleet",
        n_rounds=2,
        epochs_per_round=2,
        nodes=(NodeDef("n0", 4.0), NodeDef("n1", 4.0), NodeDef("n2", 4.0)),
        workloads=(
            WorkloadDef(key="a", kind="microbench", service="BE", rss_pages=100,
                        n_threads=1, accesses_per_thread=400),
            WorkloadDef(key="b", kind="microbench", service="BE", rss_pages=90,
                        n_threads=1, accesses_per_thread=400),
        ),
        events=(FleetEvent(round=1, action="node_drain", node="n0"),),
        seed=9,
    ).validate()
    run_fleet(spec, workers=1)
    text = summarize(tracer.events())
    assert "fleet activity" in text
    assert "1 drains" in text
    assert "evacuation" in text


def test_summary_without_fleet_events_has_no_fleet_section(tracer):
    traced_run(epochs=2)
    assert "fleet activity" not in summarize(tracer.events())


def test_chrome_trace_empty_stream():
    doc = to_chrome_trace([])
    assert doc["traceEvents"] == []
