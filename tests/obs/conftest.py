"""Tracer hygiene: the tracer is process-wide, so every test that turns
it on must leave it off for the rest of the suite."""

from __future__ import annotations

import pytest

from repro.obs.trace import get_tracer


@pytest.fixture
def tracer():
    t = get_tracer()
    t.enable()
    yield t
    t.disable()
    t.reset()
