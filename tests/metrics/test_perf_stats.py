"""Performance normalization and trial statistics."""

import numpy as np
import pytest

from repro.metrics.perf import average_improvement, geometric_mean, normalize_to_min, slowdown
from repro.metrics.stats import coefficient_of_variation, ema, mean_ci95


class TestPerf:
    def test_normalize_to_min(self):
        out = normalize_to_min({"tpp": 2.0, "vulcan": 3.0, "memtis": 2.5})
        assert out["tpp"] == 1.0
        assert out["vulcan"] == pytest.approx(1.5)

    def test_normalize_empty(self):
        assert normalize_to_min({}) == {}

    def test_normalize_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            normalize_to_min({"a": 0.0})

    def test_slowdown(self):
        assert slowdown(colocated=80.0, standalone=100.0) == pytest.approx(0.8)
        with pytest.raises(ValueError):
            slowdown(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_average_improvement_vs_best_baseline(self):
        perf = {
            "wl1": {"vulcan": 1.2, "tpp": 1.0, "memtis": 1.1},  # +9.1% vs best
            "wl2": {"vulcan": 1.0, "tpp": 1.0, "memtis": 0.9},  # +0%
        }
        imp = average_improvement(perf)
        assert imp == pytest.approx((1.2 / 1.1 - 1.0) / 2)

    def test_average_improvement_validation(self):
        with pytest.raises(ValueError):
            average_improvement({})
        with pytest.raises(KeyError):
            average_improvement({"wl": {"tpp": 1.0}})
        with pytest.raises(ValueError):
            average_improvement({"wl": {"vulcan": 1.0}})


class TestStats:
    def test_ema_first_value_passthrough(self):
        out = ema([10.0, 0.0], alpha=0.8)
        assert out[0] == 10.0
        assert out[1] == pytest.approx(0.8 * 0.0 + 0.2 * 10.0)

    def test_ema_alpha_one_tracks_input(self):
        np.testing.assert_array_equal(ema([1.0, 5.0, 2.0], 1.0), [1.0, 5.0, 2.0])

    def test_ema_alpha_zero_freezes(self):
        np.testing.assert_array_equal(ema([3.0, 9.0, 1.0], 0.0), [3.0, 3.0, 3.0])

    def test_ema_validation(self):
        with pytest.raises(ValueError):
            ema([1.0], alpha=1.5)

    def test_mean_ci95_single_sample(self):
        assert mean_ci95([4.2]) == (4.2, 0.0)

    def test_mean_ci95_t_distribution_small_n(self):
        mean, hw = mean_ci95([10.0, 12.0, 14.0, 16.0, 18.0])
        assert mean == pytest.approx(14.0)
        # t(4, 0.975) = 2.776; sem = std/sqrt(5)
        sem = np.std([10, 12, 14, 16, 18], ddof=1) / np.sqrt(5)
        assert hw == pytest.approx(2.776 * sem, rel=1e-3)

    def test_mean_ci95_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = mean_ci95(rng.normal(0, 1, 5))[1]
        large = mean_ci95(rng.normal(0, 1, 500))[1]
        assert large < small

    def test_mean_ci95_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci95([])

    def test_cv(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0
        assert coefficient_of_variation([]) == 0.0
        assert coefficient_of_variation([0, 0]) == 0.0
        assert coefficient_of_variation([0, 10]) == pytest.approx(1.0)
