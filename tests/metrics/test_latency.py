"""Request latency percentile model."""

import pytest

from repro.metrics.latency import LatencyProfile, LatencyTracker


def test_all_fast_is_deterministic():
    p = LatencyProfile(fthr=1.0, fast_cycles=210, slow_cycles=756, pages_per_request=2, base_cycles=500)
    expected = 500 + 2 * 210
    assert p.mean() == pytest.approx(expected)
    assert p.percentile(0.5) == pytest.approx(expected)
    assert p.percentile(0.99) == pytest.approx(expected)


def test_all_slow_is_deterministic():
    p = LatencyProfile(fthr=0.0, fast_cycles=210, slow_cycles=756, pages_per_request=2, base_cycles=0)
    assert p.percentile(0.99) == pytest.approx(2 * 756)


def test_tail_feels_slow_tier_before_mean_does():
    """At 90% hit ratio the p99 already pays slow-tier latency while the
    median does not — the LC workload's whole complaint."""
    p = LatencyProfile(fthr=0.9, fast_cycles=210, slow_cycles=756, pages_per_request=2, base_cycles=0)
    assert p.percentile(0.5) == pytest.approx(2 * 210)
    assert p.percentile(0.99) >= 210 + 756


def test_mean_interpolates():
    p = LatencyProfile(fthr=0.5, fast_cycles=200, slow_cycles=800, pages_per_request=1, base_cycles=0)
    assert p.mean() == pytest.approx(500)


def test_percentile_monotone():
    p = LatencyProfile(fthr=0.7, fast_cycles=210, slow_cycles=756, pages_per_request=4)
    qs = [p.percentile(q) for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
    assert qs == sorted(qs)


def test_validation():
    with pytest.raises(ValueError):
        LatencyProfile(fthr=1.5, fast_cycles=1, slow_cycles=2)
    with pytest.raises(ValueError):
        LatencyProfile(fthr=0.5, fast_cycles=1, slow_cycles=2, pages_per_request=0)
    p = LatencyProfile(fthr=0.5, fast_cycles=1, slow_cycles=2)
    with pytest.raises(ValueError):
        p.percentile(0.0)


class TestTracker:
    def test_series_and_slo(self):
        t = LatencyTracker(pages_per_request=2, base_cycles=0)
        t.record_epoch(1.0, 210, 756)  # perfect epoch
        t.record_epoch(0.5, 210, 756)  # degraded epoch
        assert len(t.p99) == 2
        assert t.p99[1] > t.p99[0]
        slo = 2 * 210 + 1  # just above the all-fast latency
        assert t.slo_violations(slo) == 1
        assert t.worst_p99() == t.p99[1]

    def test_worst_requires_data(self):
        with pytest.raises(RuntimeError):
            LatencyTracker().worst_p99()
