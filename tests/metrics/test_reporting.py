"""Plain-text table/series rendering."""

import pytest

from repro.metrics.reporting import render_series, render_table


def test_table_alignment_and_title():
    out = render_table(["sys", "perf"], [["tpp", 1.0], ["vulcan", 1.5]], title="Fig 10a")
    lines = out.splitlines()
    assert lines[0] == "Fig 10a"
    assert "sys" in lines[1] and "perf" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "vulcan" in lines[4]
    assert "1.500" in lines[4]


def test_table_row_width_checked():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [["only-one"]])


def test_table_custom_float_format():
    out = render_table(["x"], [[3.14159]], float_fmt="{:.1f}")
    assert "3.1" in out


def test_series_bars_proportional():
    out = render_series("speedup", [2, 512], [4.0, 1.0], width=40)
    lines = out.splitlines()
    assert lines[0] == "speedup"
    bar_big = lines[1].count("#")
    bar_small = lines[2].count("#")
    assert bar_big == 40
    assert bar_small == 10


def test_series_empty():
    assert "(empty)" in render_series("s", [], [])


def test_series_length_mismatch():
    with pytest.raises(ValueError):
        render_series("s", [1], [])
