"""Jain's index and the FTHR-weighted CFI (Eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.fairness import cfi, jain_index


class TestJain:
    def test_equal_is_one(self):
        assert jain_index([5, 5, 5]) == pytest.approx(1.0)

    def test_single_recipient_is_1_over_n(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        assert jain_index([1, 2, 3]) == pytest.approx(jain_index([100, 200, 300]))

    def test_empty_and_zero_vacuously_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1, -1])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=16))
    def test_bounds_property(self, values):
        j = jain_index(values)
        assert 0.0 <= j <= 1.0 + 1e-9
        if any(v > 0 for v in values):
            assert j >= 1.0 / len(values) - 1e-9


class TestCfi:
    def test_equal_effective_allocation_is_fair(self):
        alloc = {1: np.array([10.0, 10.0]), 2: np.array([20.0, 20.0])}
        fthr = {1: np.array([0.8, 0.8]), 2: np.array([0.4, 0.4])}
        # X_1 = 16, X_2 = 16 → perfectly fair.
        assert cfi(alloc, fthr) == pytest.approx(1.0)

    def test_monopoly_is_unfair(self):
        alloc = {1: np.array([100.0]), 2: np.array([0.0])}
        fthr = {1: np.array([0.9]), 2: np.array([0.1])}
        assert cfi(alloc, fthr) == pytest.approx(0.5)

    def test_fthr_weighting_matters(self):
        """Equal allocations with unequal hit ratios are NOT fair —
        the efficiency adjustment is the point of Eq. 4."""
        alloc = {1: np.array([10.0]), 2: np.array([10.0])}
        fthr_eq = {1: np.array([0.5]), 2: np.array([0.5])}
        fthr_sk = {1: np.array([0.9]), 2: np.array([0.1])}
        assert cfi(alloc, fthr_eq) > cfi(alloc, fthr_sk)

    def test_different_activity_spans_allowed(self):
        alloc = {1: np.ones(10) * 4, 2: np.ones(5) * 8}
        fthr = {1: np.ones(10), 2: np.ones(5)}
        assert cfi(alloc, fthr) == pytest.approx(1.0)

    def test_pid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cfi({1: np.array([1.0])}, {2: np.array([1.0])})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cfi({1: np.array([1.0, 2.0])}, {1: np.array([1.0])})


# -- windowed fairness under churn -----------------------------------------------

from repro.harness.experiment import ExperimentResult, WorkloadTimeseries
from repro.metrics.fairness import churn_fairness, windowed_cfi


def _ts(pid, name, epochs, alloc, fthr=None):
    n = len(epochs)
    return WorkloadTimeseries(
        pid=pid, name=name, epochs=list(epochs),
        fast_pages=list(alloc), fthr_true=list(fthr or [1.0] * n),
    )


def _result(workloads, n_epochs):
    return ExperimentResult(policy_name="t", n_epochs=n_epochs,
                            workloads={ts.pid: ts for ts in workloads})


class TestWindowedCfi:
    def test_perfectly_fair_windows_score_one(self):
        res = _result([
            _ts(1, "a", range(8), [10] * 8),
            _ts(2, "b", range(8), [10] * 8),
        ], n_epochs=8)
        windows = windowed_cfi(res, window=4)
        assert [w["cfi"] for w in windows] == [pytest.approx(1.0)] * 2
        assert [(w["start"], w["end"]) for w in windows] == [(0, 4), (4, 8)]
        assert all(w["n_active"] == 2 for w in windows)

    def test_departed_pid_leaves_later_windows(self):
        res = _result([
            _ts(1, "stays", range(8), [10] * 8),
            _ts(2, "leaves", range(4), [2] * 4),  # gone after epoch 3
        ], n_epochs=8)
        w0, w1 = windowed_cfi(res, window=4)
        assert w0["pids"] == [1, 2]
        assert w1["pids"] == [1]
        # A lone survivor is trivially fair; the skewed first window is not.
        assert w1["cfi"] == pytest.approx(1.0)
        assert w0["cfi"] < 1.0

    def test_windows_with_nobody_active_are_skipped(self):
        res = _result([_ts(1, "late", [8, 9], [5, 5])], n_epochs=12)
        windows = windowed_cfi(res, window=4)
        assert [(w["start"], w["end"]) for w in windows] == [(8, 12)]

    def test_ragged_final_window(self):
        res = _result([_ts(1, "a", range(10), [1] * 10)], n_epochs=10)
        assert windowed_cfi(res, window=4)[-1]["end"] == 10

    def test_window_must_be_positive(self):
        res = _result([_ts(1, "a", range(4), [1] * 4)], n_epochs=4)
        with pytest.raises(ValueError):
            windowed_cfi(res, window=0)


class TestChurnFairness:
    def test_summary_shape_and_bounds(self):
        res = _result([
            _ts(1, "a", range(8), [10] * 8),
            _ts(2, "b", range(4), [2] * 4),
        ], n_epochs=8)
        summ = churn_fairness(res, window=4)
        assert summ["window"] == 4
        assert len(summ["windows"]) == 2
        assert 0.0 < summ["min_cfi"] <= summ["mean_cfi"] <= 1.0
        assert summ["min_cfi"] == min(w["cfi"] for w in summ["windows"])

    def test_empty_run_defaults_to_fair(self):
        summ = churn_fairness(_result([], n_epochs=0), window=4)
        assert summ["mean_cfi"] == 1.0 and summ["min_cfi"] == 1.0 and summ["windows"] == []
