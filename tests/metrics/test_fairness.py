"""Jain's index and the FTHR-weighted CFI (Eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.fairness import cfi, jain_index


class TestJain:
    def test_equal_is_one(self):
        assert jain_index([5, 5, 5]) == pytest.approx(1.0)

    def test_single_recipient_is_1_over_n(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        assert jain_index([1, 2, 3]) == pytest.approx(jain_index([100, 200, 300]))

    def test_empty_and_zero_vacuously_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1, -1])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=16))
    def test_bounds_property(self, values):
        j = jain_index(values)
        assert 0.0 <= j <= 1.0 + 1e-9
        if any(v > 0 for v in values):
            assert j >= 1.0 / len(values) - 1e-9


class TestCfi:
    def test_equal_effective_allocation_is_fair(self):
        alloc = {1: np.array([10.0, 10.0]), 2: np.array([20.0, 20.0])}
        fthr = {1: np.array([0.8, 0.8]), 2: np.array([0.4, 0.4])}
        # X_1 = 16, X_2 = 16 → perfectly fair.
        assert cfi(alloc, fthr) == pytest.approx(1.0)

    def test_monopoly_is_unfair(self):
        alloc = {1: np.array([100.0]), 2: np.array([0.0])}
        fthr = {1: np.array([0.9]), 2: np.array([0.1])}
        assert cfi(alloc, fthr) == pytest.approx(0.5)

    def test_fthr_weighting_matters(self):
        """Equal allocations with unequal hit ratios are NOT fair —
        the efficiency adjustment is the point of Eq. 4."""
        alloc = {1: np.array([10.0]), 2: np.array([10.0])}
        fthr_eq = {1: np.array([0.5]), 2: np.array([0.5])}
        fthr_sk = {1: np.array([0.9]), 2: np.array([0.1])}
        assert cfi(alloc, fthr_eq) > cfi(alloc, fthr_sk)

    def test_different_activity_spans_allowed(self):
        alloc = {1: np.ones(10) * 4, 2: np.ones(5) * 8}
        fthr = {1: np.ones(10), 2: np.ones(5)}
        assert cfi(alloc, fthr) == pytest.approx(1.0)

    def test_pid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cfi({1: np.array([1.0])}, {2: np.array([1.0])})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cfi({1: np.array([1.0, 2.0])}, {1: np.array([1.0])})
