"""Frozen golden churn run: cross-commit bit-exactness under churn.

``tests/golden/scenario_churn.json`` pins the complete
:class:`ScenarioResult` of the canned churn scenario — metrics of every
workload instance (including the departed and restarted ones), the
departure/restart/fault records, and the leak checks.  Regenerate (only
when a behaviour change is intended) with
``PYTHONPATH=src python tests/golden/capture.py``.
"""

from __future__ import annotations

import json
import pathlib

from repro.scenario import get_scenario, run_scenario

GOLDEN = pathlib.Path(__file__).parent.parent / "golden" / "scenario_churn.json"


def test_golden_churn_bit_identical():
    frozen = json.loads(GOLDEN.read_text())
    spec = get_scenario("churn")
    assert spec.content_hash() == frozen["config"]["spec_hash"], (
        "the canned churn spec changed; regenerate the golden if intended"
    )
    sres = run_scenario(spec)
    got = json.loads(json.dumps(sres.to_dict(), sort_keys=True))
    assert got == frozen["scenario_result"], (
        "churn scenario output diverged from the frozen run"
    )
