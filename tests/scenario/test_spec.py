"""ScenarioSpec validation, serialization round-trips, content hashing."""

from __future__ import annotations

import json

import pytest

from repro.scenario import (
    ScenarioEvent,
    ScenarioSpec,
    ScenarioSpecError,
    WorkloadDef,
    get_scenario,
    scenario_names,
)


def wd(key="mc", **kw):
    base = dict(key=key, kind="memcached", service="LC", rss_pages=100)
    base.update(kw)
    return WorkloadDef(**base)


def spec(workloads=None, events=(), n_epochs=20, **kw):
    return ScenarioSpec(
        name="t",
        n_epochs=n_epochs,
        workloads=tuple(workloads if workloads is not None else [wd()]),
        events=tuple(events),
        **kw,
    )


class TestValidation:
    def test_minimal_spec_validates(self):
        spec().validate()

    def test_needs_a_workload(self):
        with pytest.raises(ScenarioSpecError, match="at least one workload"):
            spec(workloads=[]).validate()

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ScenarioSpecError, match="duplicate"):
            spec(workloads=[wd(), wd()]).validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioSpecError, match="unknown kind"):
            spec(workloads=[wd(kind="redis")]).validate()

    def test_bad_service_rejected(self):
        with pytest.raises(ScenarioSpecError, match="LC or BE"):
            spec(workloads=[wd(service="RT")]).validate()

    def test_start_epoch_outside_run_rejected(self):
        with pytest.raises(ScenarioSpecError, match="start_epoch"):
            spec(workloads=[wd(start_epoch=20)], n_epochs=20).validate()

    def test_unknown_action_rejected(self):
        with pytest.raises(ScenarioSpecError, match="unknown action"):
            spec(events=[ScenarioEvent(epoch=1, action="explode")]).validate()

    def test_event_epoch_outside_run_rejected(self):
        with pytest.raises(ScenarioSpecError, match="epoch outside"):
            spec(events=[ScenarioEvent(epoch=20, action="depart", target="mc")]).validate()

    def test_unknown_target_rejected(self):
        with pytest.raises(ScenarioSpecError, match="unknown target"):
            spec(events=[ScenarioEvent(epoch=1, action="depart", target="nope")]).validate()

    def test_depart_before_start_rejected(self):
        with pytest.raises(ScenarioSpecError, match="not started"):
            spec(
                workloads=[wd(start_epoch=5)],
                events=[ScenarioEvent(epoch=2, action="depart", target="mc")],
            ).validate()

    def test_double_depart_rejected(self):
        with pytest.raises(ScenarioSpecError, match="already departed"):
            spec(events=[
                ScenarioEvent(epoch=2, action="depart", target="mc"),
                ScenarioEvent(epoch=4, action="depart", target="mc"),
            ]).validate()

    def test_restart_without_depart_rejected(self):
        with pytest.raises(ScenarioSpecError, match="prior depart"):
            spec(events=[ScenarioEvent(epoch=2, action="restart", target="mc")]).validate()

    def test_depart_restart_depart_allowed(self):
        spec(events=[
            ScenarioEvent(epoch=2, action="depart", target="mc"),
            ScenarioEvent(epoch=4, action="restart", target="mc"),
            ScenarioEvent(epoch=6, action="depart", target="mc"),
        ]).validate()

    def test_qos_change_needs_valid_service(self):
        with pytest.raises(ScenarioSpecError, match="service"):
            spec(events=[ScenarioEvent(epoch=1, action="qos_change", target="mc", params={})]).validate()

    def test_phase_shift_needs_payload(self):
        with pytest.raises(ScenarioSpecError, match="attrs"):
            spec(events=[ScenarioEvent(epoch=1, action="phase_shift", target="mc")]).validate()

    def test_tier_offline_needs_positive_pages(self):
        with pytest.raises(ScenarioSpecError, match="pages"):
            spec(events=[ScenarioEvent(epoch=1, action="tier_offline", params={"pages": 0})]).validate()

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ScenarioSpecError, match="unknown fault kind"):
            spec(events=[ScenarioEvent(epoch=1, action="faults_set", params={"cosmic_ray": 0.5})]).validate()

    def test_fault_probability_out_of_range_rejected(self):
        with pytest.raises(ScenarioSpecError, match="probability"):
            spec(events=[ScenarioEvent(epoch=1, action="faults_set", params={"lost_async": 1.5})]).validate()

    def test_link_degrade_factors_checked(self):
        with pytest.raises(ScenarioSpecError, match="bandwidth_factor"):
            spec(events=[ScenarioEvent(epoch=1, action="link_degrade", params={"bandwidth_factor": 0.0})]).validate()


class TestSerialization:
    def test_round_trip_is_lossless(self):
        s = get_scenario("churn")
        assert ScenarioSpec.from_dict(s.to_dict()) == s

    def test_from_json_file(self, tmp_path):
        s = get_scenario("fault_storm")
        p = tmp_path / "s.json"
        p.write_text(json.dumps(s.to_dict()))
        assert ScenarioSpec.from_json(p) == s

    def test_from_dict_validates(self):
        d = get_scenario("churn").to_dict()
        d["events"][0]["action"] = "explode"
        with pytest.raises(ScenarioSpecError):
            ScenarioSpec.from_dict(d)


class TestContentHash:
    def test_hash_is_stable_across_instances(self):
        assert get_scenario("churn").content_hash() == get_scenario("churn").content_hash()

    def test_hash_changes_with_content(self):
        a = spec()
        b = spec(n_epochs=21)
        assert a.content_hash() != b.content_hash()

    def test_hash_differs_across_canned_scenarios(self):
        hashes = {get_scenario(n).content_hash() for n in scenario_names()}
        assert len(hashes) == len(scenario_names())


class TestOverrides:
    def test_override_seed(self):
        s = get_scenario("churn").with_overrides(seed=9)
        assert s.seed == 9

    def test_epoch_override_must_not_cut_off_events(self):
        with pytest.raises(ScenarioSpecError, match="cut off"):
            get_scenario("churn").with_overrides(n_epochs=10)

    def test_epoch_override_extension_allowed(self):
        assert get_scenario("churn").with_overrides(n_epochs=60).n_epochs == 60


class TestTypedValidation:
    """Inputs that used to slip through as silent no-ops or untyped
    TypeErrors must now raise ScenarioSpecError (the fuzzer's contract:
    anything validate() accepts, the engine actually executes)."""

    def test_float_epoch_rejected(self):
        # pre-fix: accepted, but the engine's int-keyed dispatch dict
        # meant the event silently never fired
        ev = ScenarioEvent(epoch=3.5, action="depart", target="mc")
        with pytest.raises(ScenarioSpecError, match="epoch must be an integer"):
            spec(events=[ev]).validate()

    def test_bool_epoch_rejected(self):
        ev = ScenarioEvent(epoch=True, action="depart", target="mc")
        with pytest.raises(ScenarioSpecError, match="epoch must be an integer"):
            spec(events=[ev]).validate()

    def test_str_epoch_rejected_with_typed_error(self):
        # pre-fix: raised a bare TypeError from the range comparison
        ev = ScenarioEvent(epoch="3", action="depart", target="mc")
        with pytest.raises(ScenarioSpecError, match="epoch must be an integer"):
            spec(events=[ev]).validate()

    @pytest.mark.parametrize("field", ["rss_pages", "n_threads", "start_epoch", "accesses_per_thread"])
    def test_non_integer_workload_fields_rejected(self, field):
        with pytest.raises(ScenarioSpecError, match=f"{field} must be an integer"):
            spec(workloads=[wd(**{field: 2.5})]).validate()

    def test_non_numeric_fault_probability_rejected(self):
        # pre-fix: float("high") raised an untyped ValueError
        ev = ScenarioEvent(epoch=1, action="faults_set", params={"lost_async": "high"})
        with pytest.raises(ScenarioSpecError, match="must be a number"):
            spec(events=[ev]).validate()

    def test_bool_fault_probability_rejected(self):
        ev = ScenarioEvent(epoch=1, action="faults_set", params={"lost_async": True})
        with pytest.raises(ScenarioSpecError, match="must be a number"):
            spec(events=[ev]).validate()

    def test_non_numeric_link_factors_rejected(self):
        for params in ({"bandwidth_factor": "slow"}, {"latency_factor": "big"}):
            ev = ScenarioEvent(epoch=1, action="link_degrade", params=params)
            with pytest.raises(ScenarioSpecError, match="must be a number"):
                spec(events=[ev]).validate()

    def test_duplicate_depart_rejected(self):
        evs = [ScenarioEvent(epoch=2, action="depart", target="mc"),
               ScenarioEvent(epoch=4, action="depart", target="mc")]
        with pytest.raises(ScenarioSpecError, match="already departed"):
            spec(events=evs).validate()

    def test_duplicate_restart_rejected(self):
        evs = [ScenarioEvent(epoch=2, action="depart", target="mc"),
               ScenarioEvent(epoch=4, action="restart", target="mc"),
               ScenarioEvent(epoch=6, action="restart", target="mc")]
        with pytest.raises(ScenarioSpecError, match="restart needs a prior depart"):
            spec(events=evs).validate()


class TestHorizonGuard:
    def test_check_horizon_names_last_scripted_epoch(self):
        s = spec(events=[ScenarioEvent(epoch=8, action="depart", target="mc")])
        assert s.last_scripted_epoch() == 8
        with pytest.raises(ScenarioSpecError, match="epoch 8"):
            s.check_horizon(5)
        s.check_horizon(9)  # one past the last event is fine

    def test_engine_run_override_cannot_drop_events(self):
        # pre-fix: ScenarioExperiment.run(4) on a spec with a depart @8
        # silently never dispatched the event
        from repro.scenario.engine import ScenarioExperiment

        s = spec(n_epochs=12,
                 events=[ScenarioEvent(epoch=8, action="depart", target="mc")])
        exp = ScenarioExperiment(s)
        with pytest.raises(ScenarioSpecError, match="cut off scripted activity"):
            exp.run(4)
