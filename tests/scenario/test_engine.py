"""ScenarioExperiment: teardown invariants, event dispatch, fault absorption.

Most tests run a micro machine (milliseconds); the churn acceptance
invariants — zero leaked frames after every teardown, CBFRP quotas
re-partitioned within one epoch of each departure — run once against
the real canned ``churn`` scenario via a module-scoped fixture.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classify import ServiceClass
from repro.obs.events import EventKind
from repro.obs.trace import get_tracer
from repro.scenario import (
    ScenarioEvent,
    ScenarioExperiment,
    ScenarioSpec,
    WorkloadDef,
    get_scenario,
)
from repro.sim.config import MachineConfig, SimulationConfig, TierConfig

UNIT = 10**6


def micro_machine(fast_pages=160, slow_pages=1024):
    return MachineConfig(
        n_cores=16,
        fast=TierConfig(name="fast", capacity_bytes=fast_pages * UNIT, load_latency_ns=70.0, bandwidth_gbps=205.0),
        slow=TierConfig(name="slow", capacity_bytes=slow_pages * UNIT, load_latency_ns=162.0, bandwidth_gbps=25.0),
    )


def micro_spec(events=(), *, n_epochs=10, policy="vulcan", workloads=None):
    if workloads is None:
        workloads = (
            WorkloadDef(key="a", kind="memcached", service="LC", rss_pages=100,
                        n_threads=2, accesses_per_thread=800),
            WorkloadDef(key="b", kind="liblinear", service="BE", rss_pages=120,
                        n_threads=2, accesses_per_thread=800),
        )
    return ScenarioSpec(
        name="micro", n_epochs=n_epochs, seed=5, policy=policy,
        workloads=tuple(workloads), events=tuple(events),
    ).validate()


def run_micro(events=(), **kw):
    spec = micro_spec(events, **kw)
    exp = ScenarioExperiment(
        spec,
        machine_config=micro_machine(),
        sim=SimulationConfig(page_unit_bytes=UNIT, epoch_seconds=0.5),
        cores_per_workload=4,
    )
    exp.run()
    return exp


@pytest.fixture(scope="module")
def churn():
    exp = ScenarioExperiment(get_scenario("churn"))
    exp.run()
    return exp


class TestTeardown:
    def test_departure_frees_every_frame(self):
        exp = run_micro([ScenarioEvent(epoch=4, action="depart", target="b")])
        sres = exp.scenario_result
        assert len(sres.departures) == 1
        dep = sres.departures[0]
        assert dep["freed"]["mapped"] == 120
        # Nothing of the departed pid survives anywhere.
        assert exp.allocator.store.owned_frames(dep["pid"]).size == 0
        assert exp.allocator.store.fast_usage(dep["pid"]) == 0
        exp.allocator.check_consistency()

    def test_departed_pid_detached_from_policy_and_daemon(self):
        exp = run_micro([ScenarioEvent(epoch=4, action="depart", target="b")])
        pid = exp.scenario_result.departures[0]["pid"]
        assert pid not in exp.policy.workloads
        assert pid not in exp.policy.daemon.workloads
        assert pid not in exp.policy.daemon.partition.quotas
        assert pid not in exp.policy.daemon.qos.workloads

    def test_departed_series_ends_at_departure(self):
        exp = run_micro([ScenarioEvent(epoch=4, action="depart", target="b")])
        dep = exp.scenario_result.departures[0]
        ts = exp.scenario_result.result.workloads[dep["pid"]]
        assert ts.last_epoch == dep["epoch"] - 1

    def test_depart_emits_obs_event(self):
        tracer = get_tracer()
        tracer.enable()
        try:
            exp = run_micro([ScenarioEvent(epoch=4, action="depart", target="b")])
            departs = [e for e in tracer.events() if e.kind is EventKind.WORKLOAD_DEPART]
        finally:
            tracer.disable()
        assert len(departs) == 1
        assert departs[0].args["epoch"] == 4
        assert departs[0].args["freed"]["mapped"] == 120
        assert exp.scenario_result.departures[0]["pid"] == departs[0].pid


class TestRestart:
    def test_restart_is_a_fresh_process(self):
        exp = run_micro([
            ScenarioEvent(epoch=3, action="depart", target="b"),
            ScenarioEvent(epoch=6, action="restart", target="b"),
        ])
        sres = exp.scenario_result
        old = sres.departures[0]["pid"]
        new = sres.restarts[0]["pid"]
        assert new != old
        assert sres.restarts[0]["generation"] == 1
        # The new instance reuses the departed core block...
        assert exp._core_base[new] == 4
        # ...and records its own timeseries from the restart epoch on.
        ts = sres.result.workloads[new]
        assert ts.first_epoch == 6
        assert ts.name == "b"

    def test_restart_emits_obs_event(self):
        tracer = get_tracer()
        tracer.enable()
        try:
            run_micro([
                ScenarioEvent(epoch=3, action="depart", target="b"),
                ScenarioEvent(epoch=6, action="restart", target="b"),
            ])
            restarts = [e for e in tracer.events() if e.kind is EventKind.WORKLOAD_RESTART]
        finally:
            tracer.disable()
        assert len(restarts) == 1
        assert restarts[0].args == {"epoch": 6, "generation": 1}


class TestEvents:
    def test_phase_shift_diverges_only_after_the_shift(self):
        quiet = run_micro(n_epochs=8).scenario_result.result
        shifted = run_micro(
            [ScenarioEvent(epoch=4, action="phase_shift", target="a",
                           params={"attrs": {"hot_frac": 0.6}})],
            n_epochs=8,
        ).scenario_result.result
        a_quiet = quiet.by_name("a")
        a_shift = shifted.by_name("a")
        assert a_quiet.fthr_true[:4] == a_shift.fthr_true[:4]
        assert a_quiet.fthr_true[4:] != a_shift.fthr_true[4:]

    def test_qos_change_reaches_policy_and_daemon(self):
        exp = run_micro([ScenarioEvent(epoch=4, action="qos_change", target="b",
                                       params={"service": "LC"})])
        change = exp.scenario_result.qos_changes[0]
        assert (change["from"], change["to"]) == ("BE", "LC")
        rt = exp.policy.workloads[change["pid"]]
        assert rt.service is ServiceClass.LC
        assert exp.policy.daemon.workloads[change["pid"]].service is ServiceClass.LC

    def test_tier_offline_online_tracks_capacity(self):
        exp = run_micro([
            ScenarioEvent(epoch=2, action="tier_offline", params={"pages": 40}),
            ScenarioEvent(epoch=6, action="tier_online"),
        ])
        evs = exp.scenario_result.capacity_events
        assert [e["what"] for e in evs] == ["tier_offline", "tier_online"]
        assert evs[0]["offlined"] <= 40
        assert evs[0]["fast_online"] == 160 - evs[0]["offlined"]
        assert evs[1]["fast_online"] == 160
        assert exp.allocator.tiers[0].online == 160
        # Vulcan's partition base follows the online capacity back up.
        assert exp.policy.daemon.partition.capacity_pages == 160
        exp.allocator.check_consistency()

    def test_link_degrade_and_restore(self):
        exp = run_micro([
            ScenarioEvent(epoch=2, action="link_degrade",
                          params={"bandwidth_factor": 0.5, "latency_factor": 2.0}),
            ScenarioEvent(epoch=6, action="link_restore"),
        ])
        evs = exp.scenario_result.capacity_events
        assert evs[0]["bandwidth_gbps"] == pytest.approx(12.5)
        assert evs[0]["added_latency_ns"] == pytest.approx(180.0)
        assert not exp.machine.link.degraded


class TestFaults:
    FAULTY = (
        ScenarioEvent(epoch=1, action="faults_set",
                      params={"aborted_sync": 0.5, "lost_async": 0.5, "poisoned_shadow": 0.5}),
    )

    def test_faults_fire_and_page_state_survives(self):
        exp = run_micro(self.FAULTY, n_epochs=8)
        sres = exp.scenario_result
        assert sres.faults, "armed faults never fired"
        kinds = {f["kind"] for f in sres.faults}
        assert kinds <= {"aborted_sync", "lost_async", "poisoned_shadow"}
        # _finish_run already ran check_consistency + row invariants;
        # re-check explicitly so a regression fails here, not obliquely.
        exp.allocator.check_consistency()
        exp.allocator.store.check_row_invariants()
        total = sum(
            sum(rt.engine.stats.faults_injected.values())
            for rt in exp.policy.workloads.values()
        )
        assert total == len(sres.faults)

    def test_faults_clear_stops_injection(self):
        exp = run_micro(
            list(self.FAULTY) + [ScenarioEvent(epoch=4, action="faults_clear")],
            n_epochs=8,
        )
        assert all(f["epoch"] < 4 for f in exp.scenario_result.faults)

    def test_zero_probability_arming_changes_nothing(self):
        baseline = run_micro(n_epochs=6).scenario_result
        armed = run_micro(
            [ScenarioEvent(epoch=1, action="faults_set", params={"lost_async": 0.0})],
            n_epochs=6,
        ).scenario_result
        assert not armed.faults
        assert armed.result.to_dict() == baseline.result.to_dict()


class TestChurnAcceptance:
    """The ISSUE acceptance criteria, against the real canned scenario."""

    def test_shape(self, churn):
        sres = churn.scenario_result
        assert len(sres.departures) == 2
        assert len(sres.restarts) == 1
        assert len(sres.faults) >= 1
        starts = sorted(d.start_epoch for d in churn.spec.workloads)
        assert len(set(starts)) == 3, "arrivals must be staggered"

    def test_zero_leaked_frames_after_every_teardown(self, churn):
        sres = churn.scenario_result
        assert len(sres.leak_checks) == 2
        assert all(c["consistent"] for c in sres.leak_checks)
        for dep in sres.departures:
            assert churn.allocator.store.owned_frames(dep["pid"]).size == 0
        churn.allocator.check_consistency()
        churn.allocator.store.check_row_invariants()
        # Frame conservation: what the survivors own plus the free lists
        # must account for the whole fast tier.
        fast = churn.allocator.tiers[0]
        live_fast = sum(
            churn.allocator.store.fast_usage(pid) for pid in churn.policy.workloads
        )
        assert live_fast + fast.free == fast.total

    def test_quotas_repartition_within_one_epoch_of_departure(self, churn):
        sres = churn.scenario_result
        result = sres.result
        n = result.n_epochs
        strict_gain = False
        for dep in sres.departures:
            e = dep["epoch"]
            # The departed pid is out of the partition the same epoch:
            # its quota series (recorded *after* the CBFRP pass) ends
            # at e-1, never at e.
            departed = result.workloads[dep["pid"]]
            assert departed.last_epoch == e - 1
            survivors = [
                ts for pid, ts in result.workloads.items()
                if pid != dep["pid"] and not np.isnan(ts.aligned("quota", n)[e])
            ]
            assert survivors, f"no survivor active at departure epoch {e}"
            before = sum(ts.aligned("quota", n)[e - 1] for ts in survivors)
            after = sum(ts.aligned("quota", n)[e] for ts in survivors)
            # Freed credits can only help the survivors; a survivor whose
            # demand was already satisfied legitimately stays flat.
            assert after >= before, (
                f"departure @{e}: surviving quotas shrank {before} -> {after}"
            )
            strict_gain = strict_gain or after > before
        assert strict_gain, "no departure re-partitioned any credits to a survivor"

    def test_restarted_workload_regains_quota_at_restart_epoch(self, churn):
        sres = churn.scenario_result
        rst = sres.restarts[0]
        ts = sres.result.workloads[rst["pid"]]
        assert ts.first_epoch == rst["epoch"]
        assert ts.quota[0] > 0
