"""Scenario determinism: same seed + spec ⇒ bit-identical everything.

Covers the three layers the ISSUE pins: repeated in-process runs,
serial vs ``workers=2`` sweep execution (module-level factory, as the
fork-based workers require), and the obs event stream produced under
tracing.
"""

from __future__ import annotations

from repro.harness import Sweep
from repro.obs.trace import get_tracer
from repro.scenario import ScenarioEvent, ScenarioSpec, WorkloadDef, run_scenario
from repro.sim.config import MachineConfig, SimulationConfig, TierConfig

UNIT = 10**6

#: module-level spec + factory so forked sweep workers can run cells
MICRO_SPEC = ScenarioSpec(
    name="micro_churn",
    n_epochs=10,
    seed=5,
    workloads=(
        WorkloadDef(key="a", kind="memcached", service="LC", rss_pages=100,
                    n_threads=2, accesses_per_thread=800),
        WorkloadDef(key="b", kind="liblinear", service="BE", rss_pages=120,
                    n_threads=2, start_epoch=1, accesses_per_thread=800),
    ),
    events=(
        ScenarioEvent(epoch=2, action="faults_set", params={"lost_async": 0.3, "aborted_sync": 0.3}),
        ScenarioEvent(epoch=5, action="depart", target="b"),
        ScenarioEvent(epoch=7, action="restart", target="b"),
    ),
).validate()


def _micro_machine() -> MachineConfig:
    return MachineConfig(
        n_cores=16,
        fast=TierConfig(name="fast", capacity_bytes=160 * UNIT, load_latency_ns=70.0, bandwidth_gbps=205.0),
        slow=TierConfig(name="slow", capacity_bytes=1024 * UNIT, load_latency_ns=162.0, bandwidth_gbps=25.0),
    )


def run_micro_scenario(*, seed: int):
    sres = run_scenario(
        MICRO_SPEC,
        seed=seed,
        machine_config=_micro_machine(),
        sim=SimulationConfig(page_unit_bytes=UNIT, epoch_seconds=0.5),
        cores_per_workload=4,
    )
    return sres


def scenario_cell(*, seed: int):
    """Sweep factory: must return the ExperimentResult, module-level."""
    return run_micro_scenario(seed=seed).result


def _mean_ops(result) -> float:
    return float(sum(ts.mean_ops() for ts in result.workloads.values()))


def test_same_seed_same_spec_bit_identical():
    a = run_micro_scenario(seed=5)
    b = run_micro_scenario(seed=5)
    assert a.to_dict() == b.to_dict()
    assert a.spec_hash == b.spec_hash


def test_different_seed_differs():
    a = run_micro_scenario(seed=5)
    b = run_micro_scenario(seed=6)
    assert a.result.to_dict() != b.result.to_dict()


def test_serial_and_parallel_sweep_agree():
    serial = Sweep(metrics={"ops": _mean_ops})
    parallel = Sweep(metrics={"ops": _mean_ops})
    grid = {"dummy": [0]}
    cells_s = serial.run(lambda dummy, seed: scenario_cell(seed=seed), grid, seeds=[5, 6])
    cells_p = parallel.run(lambda dummy, seed: scenario_cell(seed=seed), grid, seeds=[5, 6], workers=2)
    assert not parallel.errors
    assert cells_s[0].metrics == cells_p[0].metrics


def test_obs_stream_is_deterministic():
    tracer = get_tracer()

    def capture():
        tracer.enable()
        try:
            run_micro_scenario(seed=5)
            return [
                (e.kind.value, e.name, e.ts, e.pid, repr(sorted((e.args or {}).items())))
                for e in tracer.events()
            ]
        finally:
            tracer.disable()

    assert capture() == capture()
