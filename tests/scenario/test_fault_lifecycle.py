"""Fault windows interleaved with lifecycle churn, under the full oracle.

Migration faults are most dangerous exactly when frame ownership is in
flux — a departure freeing frames mid-flight, a restart re-populating,
a tier going offline while poisoned shadows exist.  Every interleaving
here runs with :class:`InvariantOracle` attached (checked after every
epoch and at teardown), so a leak, credit drift, or heat desync in any
combination fails loudly instead of corrupting silently.
"""

from __future__ import annotations

import pytest

from repro.fuzz.oracle import InvariantOracle
from repro.scenario import ScenarioEvent, ScenarioExperiment, ScenarioSpec, WorkloadDef
from repro.scenario.spec import FAULT_KEYS
from repro.sim.config import MachineConfig, SimulationConfig, TierConfig

UNIT = 10**6


def _machine():
    return MachineConfig(
        n_cores=16,
        # deliberately undersized fast tier: constant promote/demote churn
        # is what makes every fault kind (incl. shadow poisoning, which
        # needs remap-demotions) actually fire inside the window
        fast=TierConfig(name="fast", capacity_bytes=80 * UNIT, load_latency_ns=70.0, bandwidth_gbps=205.0),
        slow=TierConfig(name="slow", capacity_bytes=1024 * UNIT, load_latency_ns=162.0, bandwidth_gbps=25.0),
    )


def _run(events, *, n_epochs=12, policy="vulcan"):
    spec = ScenarioSpec(
        name="fault-lifecycle", n_epochs=n_epochs, seed=11, policy=policy,
        workloads=(
            WorkloadDef(key="a", kind="memcached", service="LC", rss_pages=100,
                        n_threads=2, accesses_per_thread=800),
            WorkloadDef(key="b", kind="liblinear", service="BE", rss_pages=120,
                        n_threads=2, accesses_per_thread=800),
        ),
        events=tuple(events),
    ).validate()
    oracle = InvariantOracle()
    exp = ScenarioExperiment(
        spec,
        machine_config=_machine(),
        sim=SimulationConfig(page_unit_bytes=UNIT, epoch_seconds=0.5),
        cores_per_workload=4,
        oracle=oracle,
    )
    exp.run()
    assert oracle.epochs_checked == spec.n_epochs
    assert exp.scenario_result is not None
    return exp.scenario_result


#: lifecycle scripts to interleave a fault window with; each is a list of
#: (epoch, action, target, params) tuples
LIFECYCLES = {
    "depart": [(5, "depart", "b", {})],
    "depart_restart": [(4, "depart", "b", {}), (7, "restart", "b", {})],
    "tier_bounce": [(4, "tier_offline", None, {"tier": "fast", "pages": 40}),
                    (8, "tier_online", None, {"tier": "fast", "pages": 40})],
    "degraded_depart": [(3, "link_degrade", None, {"bandwidth_factor": 0.4, "latency_factor": 2.0}),
                        (6, "depart", "a", {})],
}


def _events(fault_kind, lifecycle):
    evs = [ScenarioEvent(epoch=2, action="faults_set", params={fault_kind: 1.0})]
    for epoch, action, target, params in LIFECYCLES[lifecycle]:
        evs.append(ScenarioEvent(epoch=epoch, action=action, target=target, params=dict(params)))
    evs.append(ScenarioEvent(epoch=10, action="faults_clear"))
    return evs


@pytest.mark.parametrize("lifecycle", sorted(LIFECYCLES))
@pytest.mark.parametrize("fault_kind", FAULT_KEYS)
def test_fault_window_spanning_lifecycle_event(fault_kind, lifecycle):
    result = _run(_events(fault_kind, lifecycle))
    # the window was wide open (p=1.0) across heavy migration churn, so
    # faults must actually have fired — an empty record means the window
    # never armed, not that the system was lucky
    assert result.faults, f"no {fault_kind} faults recorded across {lifecycle}"
    assert all(f["kind"] == fault_kind for f in result.faults)


def test_all_fault_kinds_at_once_across_restart_cycle():
    events = [
        ScenarioEvent(epoch=1, action="faults_set",
                      params={k: 0.5 for k in FAULT_KEYS}),
        ScenarioEvent(epoch=3, action="depart", target="a"),
        ScenarioEvent(epoch=5, action="restart", target="a"),
        ScenarioEvent(epoch=6, action="depart", target="b"),
        ScenarioEvent(epoch=8, action="restart", target="b"),
    ]
    result = _run(events)
    kinds = {f["kind"] for f in result.faults}
    assert kinds, "mixed fault window recorded nothing"
    assert kinds <= set(FAULT_KEYS)


def test_faults_cleared_before_departure_stop_firing():
    events = [
        ScenarioEvent(epoch=1, action="faults_set", params={"lost_async": 1.0}),
        ScenarioEvent(epoch=3, action="faults_clear"),
        ScenarioEvent(epoch=6, action="depart", target="b"),
    ]
    result = _run(events)
    assert all(f["epoch"] < 3 for f in result.faults)
