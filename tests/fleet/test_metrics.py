"""Analytic fleet metrics: placement score, oracle, CFI rollups."""

from __future__ import annotations

import pytest

from repro.fleet.metrics import (
    fleet_cfi,
    node_cfi_spread,
    oracle_assignment,
    percentile,
    placement_quality,
    placement_score,
)

CAPS = {"n0": 400, "n1": 400}


class TestPlacementScore:
    def test_empty_assignment_is_perfect(self):
        assert placement_score({}, {}, CAPS) == 1.0

    def test_bounded_in_unit_interval(self):
        demands = {"a": 300, "b": 300, "c": 500}
        for assignment in (
            {"a": "n0", "b": "n0", "c": "n0"},
            {"a": "n0", "b": "n1", "c": "n1"},
            {"a": "n0", "b": "n1", "c": "n0"},
        ):
            s = placement_score(assignment, demands, CAPS)
            assert 0.0 <= s <= 1.0

    def test_balanced_beats_piled_up(self):
        demands = {"a": 300, "b": 300}
        split = placement_score({"a": "n0", "b": "n1"}, demands, CAPS)
        piled = placement_score({"a": "n0", "b": "n0"}, demands, CAPS)
        assert split > piled

    def test_unknown_node_raises(self):
        with pytest.raises(ValueError, match="unknown node"):
            placement_score({"a": "nope"}, {"a": 10}, CAPS)

    def test_underloaded_fleet_scores_one(self):
        demands = {"a": 100, "b": 100}
        assert placement_score({"a": "n0", "b": "n1"}, demands, CAPS) == 1.0


class TestOracle:
    def test_oracle_at_least_any_assignment(self):
        demands = {"a": 350, "b": 200, "c": 150, "d": 90}
        _, best = oracle_assignment(demands, CAPS)
        for combo in (
            {"a": "n0", "b": "n0", "c": "n1", "d": "n1"},
            {"a": "n1", "b": "n0", "c": "n0", "d": "n0"},
        ):
            assert placement_score(combo, demands, CAPS) <= best + 1e-12

    def test_search_space_cap(self):
        demands = {f"w{i}": 10 for i in range(20)}
        caps = {f"n{i}": 100 for i in range(4)}
        with pytest.raises(ValueError, match="exceeds"):
            oracle_assignment(demands, caps)

    def test_max_per_node_respected(self):
        demands = {"a": 10, "b": 10, "c": 10}
        assignment, _ = oracle_assignment(demands, CAPS, max_per_node=2)
        per_node: dict[str, int] = {}
        for n in assignment.values():
            per_node[n] = per_node.get(n, 0) + 1
        assert max(per_node.values()) <= 2

    def test_max_per_node_infeasible_raises(self):
        demands = {"a": 10, "b": 10, "c": 10}
        with pytest.raises(ValueError, match="satisfies max"):
            oracle_assignment(demands, {"n0": 100}, max_per_node=2)

    def test_quality_ratio_in_unit_interval(self):
        demands = {"a": 350, "b": 200, "c": 150}
        q = placement_quality({"a": "n0", "b": "n0", "c": "n1"}, demands, CAPS)
        assert 0.0 <= q["vs_oracle"] <= 1.0
        assert q["oracle_score"] >= q["score"]

    def test_quality_degrades_gracefully_at_scale(self):
        demands = {f"w{i}": 10 for i in range(20)}
        caps = {f"n{i}": 100 for i in range(4)}
        assignment = {k: "n0" for k in demands}
        q = placement_quality(assignment, demands, caps)
        assert q["oracle_score"] is None and q["vs_oracle"] is None
        assert 0.0 <= q["score"] <= 1.0


class TestRollups:
    def test_fleet_cfi_equal_alloc_is_fair(self):
        assert fleet_cfi({"a": 5.0, "b": 5.0, "c": 5.0}) == pytest.approx(1.0)

    def test_fleet_cfi_skew_drops(self):
        assert fleet_cfi({"a": 10.0, "b": 1.0}) < 1.0

    def test_node_cfi_spread_empty(self):
        out = node_cfi_spread({})
        assert out == {"per_node": {}, "spread": 0.0, "min": 1.0, "max": 1.0}

    def test_node_cfi_spread_reports_extremes(self):
        out = node_cfi_spread({"n0": [0.9, 0.7], "n1": [0.4], "n2": []})
        assert out["per_node"] == {"n0": pytest.approx(0.8), "n1": pytest.approx(0.4)}
        assert out["spread"] == pytest.approx(0.4)
        assert out["min"] == pytest.approx(0.4)
        assert out["max"] == pytest.approx(0.8)

    def test_percentile_nearest_rank(self):
        vals = [10.0, 20.0, 30.0, 40.0]
        assert percentile(vals, 50) == 20.0
        assert percentile(vals, 99) == 40.0
        assert percentile([], 99) == 0.0
        assert percentile([7.0], 1) == 7.0
