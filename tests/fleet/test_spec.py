"""FleetSpec and timeline validation: every illegal script fails up front."""

from __future__ import annotations

import pytest

from repro.fleet import FleetEvent, FleetSpec, FleetSpecError, NodeDef
from repro.fleet.node import node_workload_slots
from repro.scenario.spec import WorkloadDef


def _wl(key: str, rss: int = 120, start_epoch: int = 0) -> WorkloadDef:
    return WorkloadDef(
        key=key, kind="microbench", service="BE", rss_pages=rss,
        n_threads=1, start_epoch=start_epoch, accesses_per_thread=400,
    )


def _spec(**over) -> FleetSpec:
    base = dict(
        name="t",
        n_rounds=3,
        epochs_per_round=2,
        nodes=(NodeDef("n0", 4.0), NodeDef("n1", 4.0)),
        workloads=(_wl("a"), _wl("b")),
        events=(),
    )
    base.update(over)
    return FleetSpec(**base)


class TestSpecValidation:
    def test_valid_spec_chains(self):
        assert _spec().validate() is not None

    def test_needs_nodes(self):
        with pytest.raises(FleetSpecError, match="at least one node"):
            _spec(nodes=()).validate()

    def test_needs_workloads(self):
        with pytest.raises(FleetSpecError, match="at least one workload"):
            _spec(workloads=()).validate()

    def test_duplicate_node_ids(self):
        with pytest.raises(FleetSpecError, match="duplicate node ids"):
            _spec(nodes=(NodeDef("n0"), NodeDef("n0"))).validate()

    def test_duplicate_workload_keys(self):
        with pytest.raises(FleetSpecError, match="duplicate workload keys"):
            _spec(workloads=(_wl("a"), _wl("a"))).validate()

    def test_unknown_placer(self):
        with pytest.raises(FleetSpecError, match="unknown placer"):
            _spec(placer="bogus").validate()

    def test_staggered_start_epoch_rejected(self):
        with pytest.raises(FleetSpecError, match="start_epoch == 0"):
            _spec(workloads=(_wl("a"), _wl("b", start_epoch=1))).validate()

    def test_round_trip_preserves_hash(self):
        spec = _spec(events=(
            FleetEvent(round=1, action="flash_crowd", node="n0",
                       params={"factor": 2.0, "rounds": 1}),
        )).validate()
        again = FleetSpec.from_dict(spec.to_dict())
        assert again.content_hash() == spec.content_hash()


class TestTimelineValidation:
    def test_drain_last_node_rejected(self):
        events = (
            FleetEvent(round=1, action="node_drain", node="n0"),
            FleetEvent(round=2, action="node_drain", node="n1"),
        )
        with pytest.raises(FleetSpecError, match="empties the fleet"):
            _spec(events=events).validate()

    def test_drain_inactive_node_rejected(self):
        events = (
            FleetEvent(round=1, action="node_drain", node="n0"),
            FleetEvent(round=2, action="node_drain", node="n0"),
        )
        with pytest.raises(FleetSpecError, match="is not active"):
            _spec(events=events).validate()

    def test_join_active_node_rejected(self):
        with pytest.raises(FleetSpecError, match="already active"):
            _spec(events=(
                FleetEvent(round=1, action="node_join", node="n0"),
                FleetEvent(round=2, action="node_join", node="n0"),
            )).validate()

    def test_flash_crowd_inactive_node_rejected(self):
        events = (
            FleetEvent(round=1, action="node_drain", node="n1"),
            FleetEvent(round=2, action="flash_crowd", node="n1",
                       params={"factor": 2.0}),
        )
        with pytest.raises(FleetSpecError, match="inactive node"):
            _spec(events=events).validate()

    def test_flash_crowd_needs_factor_above_one(self):
        with pytest.raises(FleetSpecError, match="factor"):
            _spec(events=(
                FleetEvent(round=1, action="flash_crowd", node="n0",
                           params={"factor": 1.0}),
            )).validate()

    def test_round_zero_rejected(self):
        with pytest.raises(FleetSpecError, match="round outside"):
            _spec(events=(
                FleetEvent(round=0, action="node_drain", node="n0"),
            )).validate()

    def test_unknown_action_rejected(self):
        with pytest.raises(FleetSpecError, match="unknown action"):
            _spec(events=(
                FleetEvent(round=1, action="reboot", node="n0"),
            )).validate()

    def test_initially_active_excludes_pending_joins(self):
        spec = _spec(
            nodes=(NodeDef("n0"), NodeDef("n1"), NodeDef("n2")),
            events=(FleetEvent(round=1, action="node_join", node="n2"),),
        ).validate()
        assert spec.initially_active() == {"n0", "n1"}


class TestSlotCapacity:
    """The core-block hosting constraint the fleet fuzzer discovered:
    a node can host at most ``node_workload_slots()`` workloads, so a
    timeline that strands more than the survivors can seat is invalid."""

    def test_slots_match_machine_cores(self):
        assert node_workload_slots() == 4  # 32 cores / 8-core blocks

    def test_too_many_workloads_for_one_survivor(self):
        slots = node_workload_slots()
        wls = tuple(_wl(f"w{i}", rss=80) for i in range(slots + 1))
        with pytest.raises(FleetSpecError, match="workload slots"):
            _spec(
                workloads=wls,
                events=(FleetEvent(round=1, action="node_drain", node="n1"),),
            ).validate()

    def test_same_count_without_drain_is_fine(self):
        slots = node_workload_slots()
        wls = tuple(_wl(f"w{i}", rss=80) for i in range(slots + 1))
        assert _spec(workloads=wls).validate() is not None

    def test_initial_overcommit_rejected(self):
        slots = node_workload_slots()
        wls = tuple(_wl(f"w{i}", rss=80) for i in range(slots + 1))
        with pytest.raises(FleetSpecError, match="round 0"):
            _spec(nodes=(NodeDef("n0", 4.0),), workloads=wls).validate()
