"""Placer contracts: totality, determinism, slot caps, rebalance triggers."""

from __future__ import annotations

import pytest

from repro.fleet.node import NodeTelemetry, WorkloadTelemetry, node_workload_slots
from repro.fleet.placer import PLACER_REGISTRY, make_placer


def _telemetry(node_id: str, credits: dict[str, int]) -> NodeTelemetry:
    wls = tuple(
        WorkloadTelemetry(
            key=k, service="BE", rss_pages=100, mean_ops=1.0,
            mean_fthr=0.5, fast_pages=50, credits=c,
        )
        for k, c in sorted(credits.items())
    )
    return NodeTelemetry(
        node_id=node_id, round=0, fast_capacity_pages=400,
        free_fast_pages=100, cfi=0.9, workloads=wls,
    )


class TestRegistry:
    def test_all_placers_registered(self):
        assert set(PLACER_REGISTRY) == {"greedy-free-dram", "credit-balance", "oracle"}

    def test_unknown_placer_raises(self):
        with pytest.raises(KeyError, match="unknown placer"):
            make_placer("bogus")


@pytest.mark.parametrize("name", sorted(PLACER_REGISTRY))
class TestContract:
    def test_total_and_deterministic(self, name):
        placer = make_placer(name)
        demands = {"a": 300, "b": 200, "c": 150, "d": 90}
        caps = {"n0": 400, "n1": 400}
        kwargs = dict(
            demands=demands, capacities=caps,
            current={k: None for k in demands}, telemetry={},
        )
        out = placer.assign(**kwargs)
        assert set(out) == set(demands)
        assert set(out.values()) <= set(caps)
        assert placer.assign(**kwargs) == out

    def test_slot_cap_never_exceeded(self, name):
        slots = node_workload_slots()
        placer = make_placer(name)
        n = slots + 2  # more workloads than one node can seat
        demands = {f"w{i}": 50 for i in range(n)}
        caps = {"n0": 4000, "n1": 400}  # n0 looks better on every metric
        out = placer.assign(
            demands=demands, capacities=caps,
            current={k: None for k in demands}, telemetry={},
        )
        per_node: dict[str, int] = {}
        for node in out.values():
            per_node[node] = per_node.get(node, 0) + 1
        assert max(per_node.values()) <= slots


class TestGreedyFreeDram:
    def test_never_migrates_placed_workloads(self):
        placer = make_placer("greedy-free-dram")
        out = placer.assign(
            demands={"a": 300, "b": 300, "c": 100},
            capacities={"n0": 400, "n1": 400},
            current={"a": "n0", "b": "n0", "c": None},
            telemetry={},
        )
        assert out["a"] == "n0" and out["b"] == "n0"
        assert out["c"] == "n1"  # pending lands on the freest node


class TestCreditBalance:
    def test_rebalances_off_pressured_overloaded_node(self):
        placer = make_placer("credit-balance")
        out = placer.assign(
            demands={"a": 300, "b": 200, "c": 50},
            capacities={"n0": 400, "n1": 400},
            current={"a": "n0", "b": "n0", "c": "n1"},
            telemetry={
                "n0": _telemetry("n0", {"a": -30, "b": -10}),
                "n1": _telemetry("n1", {"c": 0}),
            },
        )
        moved = [k for k in ("a", "b") if out[k] != "n0"]
        assert len(moved) == 1, "exactly one rebalance move per round"
        assert out[moved[0]] == "n1"

    def test_no_move_when_nothing_overloaded(self):
        placer = make_placer("credit-balance")
        current = {"a": "n0", "b": "n1"}
        out = placer.assign(
            demands={"a": 200, "b": 200},
            capacities={"n0": 400, "n1": 400},
            current=current,
            telemetry={},
        )
        assert out == current

    def test_sole_tenant_not_shuffled(self):
        # moving the only resident just relocates the pressure
        placer = make_placer("credit-balance")
        current = {"a": "n0", "b": "n1"}
        out = placer.assign(
            demands={"a": 900, "b": 50},
            capacities={"n0": 400, "n1": 400},
            current=current,
            telemetry={"n0": _telemetry("n0", {"a": -40})},
        )
        assert out == current
