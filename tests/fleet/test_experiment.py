"""Fleet loop end-to-end: determinism across workers, drains, oracle gap."""

from __future__ import annotations

import pytest

from repro.fleet import (
    FleetEvent,
    FleetSpec,
    NodeDef,
    get_fleet_scenario,
    oracle_assignment,
    placement_score,
    run_fleet,
)
from repro.fleet.node import node_capacity_pages, node_workload_slots
from repro.fleet.placer import make_placer
from repro.scenario.spec import WorkloadDef


def _wl(key: str, rss: int, service: str = "BE") -> WorkloadDef:
    return WorkloadDef(
        key=key, kind="microbench", service=service, rss_pages=rss,
        n_threads=1, start_epoch=0, accesses_per_thread=400,
    )


def _small_fleet(**over) -> FleetSpec:
    base = dict(
        name="small",
        n_rounds=3,
        epochs_per_round=2,
        nodes=(NodeDef("n0", 4.0), NodeDef("n1", 4.0), NodeDef("n2", 4.0)),
        workloads=(_wl("a", 200, "LC"), _wl("b", 150), _wl("c", 120), _wl("d", 90)),
        events=(),
        seed=11,
    )
    base.update(over)
    return FleetSpec(**base).validate()


@pytest.fixture(scope="module")
def serial_result():
    return run_fleet(_small_fleet(), workers=1)


class TestWorkerEquivalence:
    """ISSUE acceptance: 3-node fleet, same seed, bit-identical across
    workers = 1 / 2 / 4."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_matches_serial_bit_for_bit(self, serial_result, workers):
        par = run_fleet(_small_fleet(), workers=workers)
        assert par.canonical_json() == serial_result.canonical_json()

    def test_workers_used_is_the_only_difference(self, serial_result):
        par = run_fleet(_small_fleet(), workers=2)
        assert par.to_dict()["workers_used"] == 2
        assert serial_result.to_dict()["workers_used"] == 1


class TestSummary:
    def test_summary_reports_fleet_metrics(self, serial_result):
        s = serial_result.summary()
        assert 0.0 <= s["fleet_cfi"] <= 1.0
        assert s["n_nodes"] == 3 and s["n_workloads"] == 4
        assert s["node_epochs"] == 3 * 3 * 2  # rounds x nodes-hosting x epochs
        assert s["vs_oracle"] is None or 0.0 <= s["vs_oracle"] <= 1.0

    def test_round_records_conserve_workloads(self, serial_result):
        for rec in serial_result.to_dict()["rounds"]:
            assert sorted(rec["assignment"]) == ["a", "b", "c", "d"]


class TestDrainEvacuation:
    """ISSUE acceptance: a drain always fully evacuates — nothing stays
    on the drained node, everything is re-placed in the same round."""

    @pytest.fixture(scope="class")
    def drained(self):
        spec = _small_fleet(events=(
            FleetEvent(round=1, action="node_drain", node="n0"),
        ))
        return run_fleet(spec, workers=1).to_dict()

    def test_drained_node_leaves_active_set(self, drained):
        for rec in drained["rounds"]:
            if rec["round"] >= 1:
                assert "n0" not in rec["active"]

    def test_no_workload_left_behind(self, drained):
        for rec in drained["rounds"]:
            if rec["round"] >= 1:
                assert all(node != "n0" for node in rec["assignment"].values())

    def test_every_resident_evacuated_same_round(self, drained):
        residents = {
            k for k, n in drained["rounds"][0]["assignment"].items() if n == "n0"
        }
        evac = [m for m in drained["moves"] if m["reason"] == "evacuation"]
        assert {m["key"] for m in evac} == residents
        assert all(m["round"] == 1 and m["src"] == "n0" for m in evac)

    def test_evacuations_carry_cross_node_cost(self, drained):
        for m in drained["moves"]:
            if m["reason"] == "evacuation":
                assert m["cycles"] == m["pages"] * 40_000 > 0


class TestOracleDominance:
    """ISSUE acceptance: the oracle scores >= every heuristic on the
    pinned 3-node / 6-workload case (same objective by construction)."""

    DEMANDS = {"mc-a": 320, "mc-b": 240, "ms-a": 150, "pr-a": 260, "ll-a": 200, "ll-b": 120}
    CAPS = {
        "n0": node_capacity_pages(4.0),
        "n1": node_capacity_pages(4.0),
        "n2": node_capacity_pages(8.0),
    }

    def test_oracle_at_least_every_heuristic(self):
        slots = node_workload_slots()
        _, best = oracle_assignment(self.DEMANDS, self.CAPS, max_per_node=slots)
        for name in ("greedy-free-dram", "credit-balance"):
            out = make_placer(name).assign(
                demands=self.DEMANDS, capacities=self.CAPS,
                current={k: None for k in self.DEMANDS}, telemetry={},
            )
            assert placement_score(out, self.DEMANDS, self.CAPS) <= best + 1e-12


class TestObsRegistry:
    """Satellite 1: the fleet loop feeds the process-wide metrics
    registry — counters for moves/rounds, gauges for node state."""

    @pytest.fixture
    def registry(self):
        from repro.obs.metrics import get_registry

        reg = get_registry()
        was_enabled = reg.enabled
        reg.enabled = True
        reg.reset()
        yield reg
        reg.enabled = was_enabled
        reg.reset()

    def test_fleet_run_bumps_counters_and_gauges(self, registry):
        spec = _small_fleet(events=(
            FleetEvent(round=1, action="node_drain", node="n0"),
        ))
        run_fleet(spec, workers=1)
        collected = registry.collect()
        counter_names = {m["name"] for m in collected["counters"]}
        assert "fleet_rounds_total" in counter_names
        assert "fleet_placements_total" in counter_names
        assert "fleet_evacuations_total" in counter_names
        gauge_names = {m["name"] for m in collected["gauges"]}
        assert "fleet_node_free_pages" in gauge_names
        changes = [m for m in collected["counters"] if m["name"] == "fleet_node_changes"]
        assert any(m["labels"].get("change") == "drain" for m in changes)


class TestCannedScenarios:
    def test_canned_fleets_validate(self):
        for name in ("balanced_trio", "drain_rebalance", "flash_crowd_fleet"):
            spec = get_fleet_scenario(name)
            assert spec.validate() is spec or spec.validate() is not None

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_fleet_scenario("bogus")
