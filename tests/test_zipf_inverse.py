"""LUT-accelerated inverse-CDF must equal ``np.searchsorted`` exactly.

Workload traffic generation relies on ``ZipfSampler._invert`` returning
the very integer ``np.searchsorted(cdf, u, side='right')`` would, for
every float input — any divergence silently changes which pages a
workload touches and breaks bit-identical replay.  These tests pin the
equality on random draws, adversarial inputs sitting exactly on LUT
bucket boundaries, and inputs equal to CDF steps themselves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.zipf import ZipfSampler


def _reference(sampler: ZipfSampler, u: np.ndarray) -> np.ndarray:
    return np.searchsorted(sampler._cdf, u, side="right").astype(np.int64)


@pytest.mark.parametrize("n", [1, 2, 3, 17, 1000, 65_537])
@pytest.mark.parametrize("s", [0.0, 0.5, 0.99, 1.2])
def test_invert_matches_searchsorted_on_random_draws(n: int, s: float) -> None:
    sampler = ZipfSampler(n, s)
    rng = np.random.default_rng(42)
    u = rng.random(20_000)
    np.testing.assert_array_equal(sampler._invert(u.copy()), _reference(sampler, u))


def test_invert_matches_on_lut_bucket_boundaries() -> None:
    sampler = ZipfSampler(512, 0.99)
    m = sampler._LUT_BUCKETS
    # every representable bucket edge b/m (exact binary floats), plus
    # the floats immediately next to a sample of them
    edges = np.arange(m, dtype=np.float64) / m
    rng = np.random.default_rng(7)
    some = rng.choice(edges[1:], size=1024, replace=False)
    u = np.concatenate([edges, np.nextafter(some, 0.0), np.nextafter(some, 1.0)])
    np.testing.assert_array_equal(sampler._invert(u.copy()), _reference(sampler, u))


def test_invert_matches_on_cdf_steps() -> None:
    sampler = ZipfSampler(257, 0.8)
    cdf = sampler._cdf
    inside = cdf[cdf < 1.0]
    u = np.concatenate([inside, np.nextafter(inside, 0.0), np.nextafter(inside, 1.0)])
    np.testing.assert_array_equal(sampler._invert(u.copy()), _reference(sampler, u))


def test_invert_matches_at_extremes() -> None:
    sampler = ZipfSampler(1000, 0.99)
    u = np.array([0.0, np.nextafter(0.0, 1.0), 0.5, np.nextafter(1.0, 0.0)])
    np.testing.assert_array_equal(sampler._invert(u.copy()), _reference(sampler, u))


def test_sample_consumes_one_uniform_block_per_call() -> None:
    # the RNG-stream-identity contract: sample(size) must consume
    # exactly rng.random(size) and nothing else
    sampler = ZipfSampler(4096, 0.99)
    r1 = np.random.default_rng(3)
    r2 = np.random.default_rng(3)
    out = sampler.sample(777, r1)
    u = r2.random(777)
    np.testing.assert_array_equal(out, np.clip(_reference(sampler, u), 0, sampler.n - 1))
    # both generators are now in the same state
    assert r1.random() == r2.random()
