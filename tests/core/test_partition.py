"""Fast-tier partition ledger."""

import pytest

from repro.core.partition import PartitionLedger


def make() -> PartitionLedger:
    led = PartitionLedger(capacity_pages=100)
    led.register(1, quota_pages=40)
    led.register(2, quota_pages=60)
    return led


def test_headroom_and_overage():
    led = make()
    led.set_usage(1, 25)
    assert led.headroom(1) == 15
    assert led.overage(1) == 0
    led.set_usage(1, 55)
    assert led.headroom(1) == 0
    assert led.overage(1) == 15


def test_set_quotas_replaces():
    led = make()
    led.set_quotas({1: 70, 2: 30})
    assert led.quotas == {1: 70, 2: 30}


def test_quota_sum_capped():
    led = make()
    with pytest.raises(ValueError):
        led.set_quotas({1: 70, 2: 40})


def test_unknown_pid_quota_rejected():
    led = make()
    with pytest.raises(KeyError):
        led.set_quotas({9: 10})


def test_negative_values_rejected():
    led = make()
    with pytest.raises(ValueError):
        led.set_quotas({1: -1, 2: 0})
    with pytest.raises(ValueError):
        led.set_usage(1, -1)
    led.set_usage(1, 3)
    with pytest.raises(ValueError):
        led.add_usage(1, -5)


def test_add_usage_delta():
    led = make()
    led.add_usage(1, 5)
    led.add_usage(1, 2)
    assert led.usage[1] == 7


def test_utilization():
    led = make()
    led.set_usage(1, 30)
    led.set_usage(2, 20)
    assert led.total_usage() == 50
    assert led.utilization() == pytest.approx(0.5)


def test_register_unregister():
    led = make()
    with pytest.raises(ValueError):
        led.register(1)
    led.unregister(1)
    assert 1 not in led.quotas and 1 not in led.usage
    led.unregister(99)  # idempotent


def test_capacity_validation():
    with pytest.raises(ValueError):
        PartitionLedger(capacity_pages=0)
