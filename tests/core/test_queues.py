"""Four priority queues + MLFQ escalation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import PageClass
from repro.core.queues import PromotionQueues


def test_pop_serves_priority_order():
    q = PromotionQueues()
    q.enqueue(1, 10, heat=5.0, page_class=PageClass.SHARED_WRITE)
    q.enqueue(1, 11, heat=5.0, page_class=PageClass.PRIVATE_READ)
    q.enqueue(1, 12, heat=5.0, page_class=PageClass.SHARED_READ)
    q.enqueue(1, 13, heat=5.0, page_class=PageClass.PRIVATE_WRITE)
    order = [p.vpn for p in q.pop(4)]
    assert order == [11, 12, 13, 10]


def test_hottest_first_within_class():
    q = PromotionQueues()
    q.enqueue(1, 10, heat=1.0, page_class=PageClass.PRIVATE_READ)
    q.enqueue(1, 11, heat=9.0, page_class=PageClass.PRIVATE_READ)
    q.enqueue(1, 12, heat=5.0, page_class=PageClass.PRIVATE_READ)
    assert [p.vpn for p in q.pop(3)] == [11, 12, 10]


def test_budget_respected():
    q = PromotionQueues()
    for vpn in range(10):
        q.enqueue(1, vpn, heat=1.0, page_class=PageClass.PRIVATE_READ)
    assert len(q.pop(3)) == 3
    assert len(q) == 7


def test_reenqueue_supersedes_old_entry():
    q = PromotionQueues()
    q.enqueue(1, 10, heat=1.0, page_class=PageClass.PRIVATE_READ)
    q.enqueue(1, 10, heat=8.0, page_class=PageClass.PRIVATE_READ)
    served = q.pop(10)
    assert len(served) == 1
    assert served[0].heat == 8.0


def test_mlfq_escalation_on_hot_page_in_low_queue():
    q = PromotionQueues(boost_factor=2.0)
    # Populate the class above with moderate heat.
    for vpn in range(5):
        q.enqueue(1, vpn, heat=4.0, page_class=PageClass.PRIVATE_WRITE)
    # A shared-write page far hotter than the class above escalates.
    cls = q.enqueue(1, 99, heat=100.0, page_class=PageClass.SHARED_WRITE)
    assert cls > PageClass.SHARED_WRITE
    assert q.escalations >= 1


def test_mlfq_no_escalation_without_reference_population(  # noqa: D103
):
    q = PromotionQueues()
    cls = q.enqueue(1, 99, heat=100.0, page_class=PageClass.SHARED_WRITE)
    assert cls is PageClass.SHARED_WRITE  # nothing above to compare against


def test_mlfq_cold_page_stays_put():
    q = PromotionQueues(boost_factor=2.0)
    for vpn in range(5):
        q.enqueue(1, vpn, heat=4.0, page_class=PageClass.PRIVATE_WRITE)
    cls = q.enqueue(1, 99, heat=1.0, page_class=PageClass.SHARED_WRITE)
    assert cls is PageClass.SHARED_WRITE


def test_drop_removes_candidate():
    q = PromotionQueues()
    q.enqueue(1, 10, heat=1.0, page_class=PageClass.PRIVATE_READ)
    assert q.drop(1, 10) is True
    assert q.drop(1, 10) is False
    assert q.pop(10) == []


def test_drop_pid():
    q = PromotionQueues()
    q.enqueue(1, 10, heat=1.0, page_class=PageClass.PRIVATE_READ)
    q.enqueue(2, 11, heat=1.0, page_class=PageClass.PRIVATE_READ)
    assert q.drop_pid(1) == 1
    assert [p.pid for p in q.pop(10)] == [2]


def test_depth_accounting():
    q = PromotionQueues()
    q.enqueue(1, 10, heat=1.0, page_class=PageClass.SHARED_READ)
    q.enqueue(1, 11, heat=1.0, page_class=PageClass.SHARED_READ)
    assert q.depth(PageClass.SHARED_READ) == 2
    q.pop(1)
    assert q.depth(PageClass.SHARED_READ) == 1


def test_validation():
    with pytest.raises(ValueError):
        PromotionQueues(boost_factor=1.0)
    q = PromotionQueues()
    with pytest.raises(ValueError):
        q.enqueue(1, 1, heat=-1.0, page_class=PageClass.SHARED_READ)
    with pytest.raises(ValueError):
        q.pop(-1)


@settings(max_examples=30, deadline=None)
@given(
    entries=st.lists(
        st.tuples(st.integers(0, 50), st.floats(0.0, 100.0), st.sampled_from(list(PageClass))),
        min_size=1,
        max_size=40,
    )
)
def test_pop_order_property(entries):
    """Served pages are sorted by (effective class desc, heat desc)."""
    q = PromotionQueues()
    for vpn, heat, cls in entries:
        q.enqueue(1, vpn, heat=heat, page_class=cls)
    served = q.pop(len(entries))
    keys = [(-p.effective_class, -p.heat) for p in served]
    assert keys == sorted(keys)
    # Each live page served at most once.
    assert len({p.vpn for p in served}) == len(served)
