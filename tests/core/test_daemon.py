"""VulcanDaemon: end-to-end management epochs on a small machine."""

import numpy as np
import pytest

from repro.core.classify import ServiceClass
from repro.core.daemon import VulcanDaemon, WorkloadHandle
from repro.machine.platform import Machine
from repro.mm.address_space import AddressSpace
from repro.mm.frame_alloc import FrameAllocator
from repro.mm.lru import LruSubsystem
from repro.mm.migration import MigrationEngine, OptimizationFlags
from repro.mm.shadow import ShadowTracker
from repro.profiling.base import AccessBatch
from repro.profiling.pebs import PebsProfiler
from tests.conftest import make_process, small_machine_config


def build_world(fast=32, slow=256):
    machine = Machine(small_machine_config(fast_pages=fast, slow_pages=slow), rng=np.random.default_rng(0))
    alloc = FrameAllocator(fast_frames=fast, slow_frames=slow)
    lru = LruSubsystem(n_cpus=machine.cpu.n_cores)
    daemon = VulcanDaemon(alloc, fast_capacity_pages=fast, unit_pages=4, promotion_budget_per_epoch=16)
    return machine, alloc, lru, daemon


def attach_workload(machine, alloc, lru, daemon, pid, n_pages, service, prefer_tier=0):
    proc = make_process(pid=pid, n_threads=2)
    vma = proc.mmap(n_pages)
    space = AddressSpace(proc, alloc)
    for i, vpn in enumerate(range(vma.start_vpn, vma.end_vpn)):
        space.fault(vpn, tid=i % 2, prefer_tier=prefer_tier)
    engine = MigrationEngine(
        machine, alloc, space, lru,
        flags=OptimizationFlags(opt_prep=True, opt_tlb=True),
        thread_core_map={0: 0, 1: 1},
        shadow=ShadowTracker(),
        rng=np.random.default_rng(pid),
    )
    prof = PebsProfiler(period=1)
    handle = WorkloadHandle(
        pid=pid, name=f"w{pid}", service=service, space=space,
        engine=engine, profiler=prof, shadow=engine.shadow,
    )
    daemon.attach(handle)
    return handle, vma


def heat_pages(handle, vpns, count=20, write=False):
    batch = AccessBatch(
        pid=handle.pid,
        tid=0,
        vpns=np.repeat(np.asarray(vpns, dtype=np.int64), count),
        is_write=np.full(len(vpns) * count, write, dtype=bool),
    )
    handle.profiler.observe(batch)


def test_attach_registers_everywhere():
    machine, alloc, lru, daemon = build_world()
    h, _ = attach_workload(machine, alloc, lru, daemon, 1, 16, ServiceClass.LC)
    assert 1 in daemon.workloads
    assert 1 in daemon.qos.workloads
    assert 1 in daemon.partition.quotas
    with pytest.raises(ValueError):
        daemon.attach(h)


def test_detach_cleans_up():
    machine, alloc, lru, daemon = build_world()
    attach_workload(machine, alloc, lru, daemon, 1, 16, ServiceClass.LC)
    daemon.detach(1)
    assert daemon.workloads == {}
    assert daemon.qos.workloads == {}
    daemon.detach(1)  # idempotent


def test_tick_empty_daemon_is_noop():
    _, _, _, daemon = build_world()
    report = daemon.tick()
    assert report.quotas == {}
    assert report.promotions == 0


def test_tick_promotes_hot_slow_pages_within_quota():
    machine, alloc, lru, daemon = build_world(fast=32)
    h, vma = attach_workload(machine, alloc, lru, daemon, 1, 24, ServiceClass.LC, prefer_tier=1)
    # Everything starts slow; heat 8 pages hard.
    hot = list(range(vma.start_vpn, vma.start_vpn + 8))
    heat_pages(h, hot, count=30)
    qos = daemon.qos.workloads[1]
    qos.add_sample(0, 100)  # all slow: under target
    report = daemon.tick()
    assert report.promotions > 0
    promoted_fast = sum(
        1 for vpn in hot
        if alloc.tier_of_pfn(h.space.translate(vpn)) == 0
    )
    assert promoted_fast == 8


def test_tick_demotes_over_quota_workload():
    machine, alloc, lru, daemon = build_world(fast=32)
    # LC hog holds all 32 fast pages but only 4 are hot.
    h1, v1 = attach_workload(machine, alloc, lru, daemon, 1, 32, ServiceClass.LC, prefer_tier=0)
    heat_pages(h1, list(range(v1.start_vpn, v1.start_vpn + 4)), count=50)
    h1.profiler.end_epoch()  # make heat visible pre-tick
    # A second workload arrives wanting memory.
    h2, v2 = attach_workload(machine, alloc, lru, daemon, 2, 32, ServiceClass.BE, prefer_tier=1)
    heat_pages(h2, list(range(v2.start_vpn, v2.start_vpn + 8)), count=50)
    daemon.qos.workloads[1].add_sample(95, 5)  # satisfied
    daemon.qos.workloads[2].add_sample(0, 100)  # starving
    for _ in range(6):
        report = daemon.tick()
    # The hog shrank toward its hot set; the starved workload got pages.
    usage2 = daemon.partition.usage[2]
    assert usage2 > 0
    assert report.demotions >= 0
    assert daemon.partition.usage[1] < 32


def test_report_contains_qos_series():
    machine, alloc, lru, daemon = build_world()
    h, _ = attach_workload(machine, alloc, lru, daemon, 1, 16, ServiceClass.LC)
    daemon.qos.workloads[1].add_sample(50, 50)
    report = daemon.tick()
    assert report.fthr[1] == pytest.approx(0.5)
    assert 0.0 < report.gpt[1] <= 1.0
    assert 1 in report.quotas
    assert 1 in report.plans


def test_quotas_respect_capacity():
    machine, alloc, lru, daemon = build_world(fast=32)
    for pid in (1, 2, 3):
        h, _ = attach_workload(machine, alloc, lru, daemon, pid, 20, ServiceClass.BE, prefer_tier=1)
        daemon.qos.workloads[pid].add_sample(0, 100)
    report = daemon.tick()
    assert sum(report.quotas.values()) <= 32
