"""Service-class and page-class (Table 1) classification."""

import pytest

from repro.core.classify import (
    WRITE_INTENSIVE_THRESHOLD,
    PageClass,
    ServiceClass,
    WorkloadSignals,
    classify_page,
    classify_service,
)


class TestPageClass:
    def test_table1_matrix(self):
        assert classify_page(private=True, write_fraction=0.0) is PageClass.PRIVATE_READ
        assert classify_page(private=False, write_fraction=0.0) is PageClass.SHARED_READ
        assert classify_page(private=True, write_fraction=0.9) is PageClass.PRIVATE_WRITE
        assert classify_page(private=False, write_fraction=0.9) is PageClass.SHARED_WRITE

    def test_table1_priority_order(self):
        """★★★★ private-read > ★★★ shared-read > ★★ private-write > ★ shared-write."""
        assert (
            PageClass.PRIVATE_READ
            > PageClass.SHARED_READ
            > PageClass.PRIVATE_WRITE
            > PageClass.SHARED_WRITE
        )

    def test_table1_strategy_column(self):
        assert PageClass.PRIVATE_READ.use_async_copy
        assert PageClass.SHARED_READ.use_async_copy
        assert not PageClass.PRIVATE_WRITE.use_async_copy
        assert not PageClass.SHARED_WRITE.use_async_copy

    def test_ownership_and_intensity_helpers(self):
        assert PageClass.PRIVATE_WRITE.is_private
        assert not PageClass.SHARED_READ.is_private
        assert PageClass.SHARED_WRITE.is_write_intensive
        assert not PageClass.PRIVATE_READ.is_write_intensive

    def test_threshold_boundary(self):
        just_below = WRITE_INTENSIVE_THRESHOLD - 1e-9
        assert classify_page(private=True, write_fraction=just_below) is PageClass.PRIVATE_READ
        assert classify_page(private=True, write_fraction=WRITE_INTENSIVE_THRESHOLD) is PageClass.PRIVATE_WRITE

    def test_custom_threshold(self):
        assert classify_page(private=True, write_fraction=0.3, threshold=0.5) is PageClass.PRIVATE_READ

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            classify_page(private=True, write_fraction=1.5)


class TestServiceClass:
    def test_declared_wins(self):
        s = WorkloadSignals(mean_utilization=1.0, burstiness=0.0, declared=ServiceClass.LC)
        assert classify_service(s) is ServiceClass.LC

    def test_saturating_steady_is_be(self):
        s = WorkloadSignals(mean_utilization=0.95, burstiness=0.1)
        assert classify_service(s) is ServiceClass.BE

    def test_bursty_is_lc(self):
        s = WorkloadSignals(mean_utilization=0.9, burstiness=0.8)
        assert classify_service(s) is ServiceClass.LC

    def test_low_utilization_is_lc(self):
        s = WorkloadSignals(mean_utilization=0.3, burstiness=0.1)
        assert classify_service(s) is ServiceClass.LC

    def test_conservative_default(self):
        """Unknown-looking workloads classify LC (the safe direction)."""
        assert classify_service(WorkloadSignals()) is ServiceClass.LC
