"""Credit-Based Fair Resource Partitioning (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cbfrp import INITIAL_CREDITS, CreditLedger, run_cbfrp
from repro.core.classify import ServiceClass

LC, BE = ServiceClass.LC, ServiceClass.BE


def run(capacity, demands, service, ledger=None, seed=0):
    led = ledger if ledger is not None else CreditLedger()
    return run_cbfrp(capacity, demands, service, led, rng=np.random.default_rng(seed)), led


def test_everyone_fits_within_gfmc():
    st_, led = run(90, {1: 20, 2: 30, 3: 10}, {1: LC, 2: BE, 3: BE})
    assert st_.allocations == {1: 20, 2: 30, 3: 10}
    assert st_.transfers == 0


def test_donor_surplus_flows_to_borrower():
    # GFMC = 30 each; 2 demands 10, donating 20 to 1 (demand 50).
    st_, led = run(90, {1: 50, 2: 10, 3: 30}, {1: LC, 2: BE, 3: BE})
    assert st_.allocations == {1: 50, 2: 10, 3: 30}
    assert led.get(2) == INITIAL_CREDITS + 20  # donor earned
    assert led.get(1) == INITIAL_CREDITS - 20  # borrower paid


def test_capacity_never_exceeded():
    st_, _ = run(90, {1: 90, 2: 90, 3: 90}, {1: LC, 2: BE, 3: BE})
    assert sum(st_.allocations.values()) <= 90
    assert all(a == 30 for a in st_.allocations.values())  # all capped at GFMC


def test_lc_borrower_served_before_be():
    # One donor with 10 surplus; LC and BE both want 20 more.
    st_, _ = run(90, {1: 50, 2: 50, 3: 20}, {1: LC, 2: BE, 3: BE})
    # LC got the donor's full surplus first.
    assert st_.allocations[1] == 40
    assert st_.allocations[2] == 30


def test_lc_expropriates_be_above_gfmc():
    """Lines 11-13: with no donors left, LC takes from a BE task holding
    more than GFMC."""
    led = CreditLedger()
    # First round: BE grabs surplus.
    st1, _ = run(90, {1: 10, 2: 70, 3: 30}, {1: LC, 2: BE, 3: BE}, ledger=led)
    assert st1.allocations[2] == 50  # 30 + pid1's 20 surplus
    # Second round: LC now needs everything; no donors exist.
    demands = {1: 90, 2: 70, 3: 30}
    st2 = run_cbfrp(90, demands, {1: LC, 2: BE, 3: BE}, led, rng=np.random.default_rng(1))
    assert st2.expropriated == 0 or st2.allocations[1] > 30  # expropriation helped LC
    assert sum(st2.allocations.values()) <= 90


def test_be_never_expropriates():
    # BE borrower, no donors: allocation stays at GFMC.
    st_, _ = run(60, {1: 60, 2: 60}, {1: BE, 2: BE})
    assert st_.allocations == {1: 30, 2: 30}
    assert st_.expropriated == 0


def test_poorest_donor_donates_first():
    led = CreditLedger()
    led.credits = {1: 64, 2: 10, 3: 99}
    st_, _ = run(90, {1: 50, 2: 20, 3: 20}, {1: LC, 2: BE, 3: BE}, ledger=led)
    # Both 2 and 3 have surplus 10; pid 2 (fewer credits) donates first
    # and earns; with 20 needed, both end up donating fully here, so
    # check ordering via credits delta.
    assert led.get(2) == 20  # 10 + 10 earned
    assert led.get(3) == 109


def test_richest_borrower_first_within_class():
    led = CreditLedger()
    led.credits = {1: 100, 2: 5, 3: 64}
    # Donor 3 has surplus 10; borrowers 1 and 2 each want +20.
    st_, _ = run(90, {1: 50, 2: 50, 3: 20}, {1: BE, 2: BE, 3: BE}, ledger=led)
    assert st_.allocations[1] == 40  # rich borrower served first (Karma)
    assert st_.allocations[2] == 30


def test_empty_inputs():
    st_, _ = run(100, {}, {})
    assert st_.allocations == {}


def test_mismatched_pids_rejected():
    with pytest.raises(ValueError):
        run(100, {1: 10}, {2: BE})


def test_ledger_transfer_validation():
    led = CreditLedger()
    with pytest.raises(ValueError):
        led.transfer(1, 2, 0)


@settings(max_examples=40, deadline=None)
@given(
    demands=st.lists(st.integers(0, 200), min_size=1, max_size=6),
    lc_mask=st.lists(st.booleans(), min_size=6, max_size=6),
    capacity=st.integers(1, 300),
)
def test_invariants_property(demands, lc_mask, capacity):
    """Conservation + guarantee invariants for arbitrary inputs."""
    dem = {i: d for i, d in enumerate(demands)}
    svc = {i: (LC if lc_mask[i] else BE) for i in dem}
    led = CreditLedger()
    state = run_cbfrp(capacity, dem, svc, led, rng=np.random.default_rng(0))
    total = sum(state.allocations.values())
    gfmc = capacity // len(dem)
    assert total <= capacity
    for pid, alloc in state.allocations.items():
        assert alloc >= 0
        assert alloc <= max(dem[pid], gfmc)  # never above demand unless within guarantee
    # Credits are zero-sum relative to the initial endowment.
    assert sum(led.credits.values()) == INITIAL_CREDITS * len(dem)
