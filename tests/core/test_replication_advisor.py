"""Auto enable/disable advisor for per-thread page tables (§3.6)."""

import pytest

from repro.core.replication_advisor import ReplicationAdvisor
from repro.sim.units import PAGE_SIZE


def test_private_heavy_migration_says_enable():
    adv = ReplicationAdvisor()
    # 500 migrations/epoch of fully-private pages on 8 threads: 7 IPI
    # targets saved per page; trivial link/memory costs.
    adv.note_epoch(1, migrations=500, avg_sharers=1.0, n_threads=8,
                   new_leaf_links=10, replica_upper_pages=24)
    advice = adv.advise(1)
    assert advice.enable
    assert advice.net_cycles_per_epoch > 0


def test_faas_shape_says_disable():
    """Many threads, tiny footprint, churning leaf links, almost no
    migration — the paper's problematic FaaS case."""
    adv = ReplicationAdvisor()
    for _ in range(4):
        adv.note_epoch(1, migrations=2, avg_sharers=6.0, n_threads=8,
                       new_leaf_links=5_000, replica_upper_pages=400)
    advice = adv.advise(1)
    assert not advice.enable
    assert advice.cost_cycles_per_epoch > advice.benefit_cycles_per_epoch


def test_fully_shared_traffic_has_no_benefit():
    adv = ReplicationAdvisor()
    adv.note_epoch(1, migrations=500, avg_sharers=8.0, n_threads=8,
                   new_leaf_links=100, replica_upper_pages=24)
    assert adv.advise(1).benefit_cycles_per_epoch == 0.0


def test_hysteresis_resists_flapping():
    adv = ReplicationAdvisor(hysteresis=2.0)
    # Benefit just barely above cost: stays enabled (default on)...
    adv.note_epoch(1, migrations=10, avg_sharers=7.0, n_threads=8,
                   new_leaf_links=14, replica_upper_pages=0)
    first = adv.advise(1)
    # ...but from the disabled state the same evidence would not re-enable.
    adv2 = ReplicationAdvisor(hysteresis=2.0)
    adv2._current[1] = False
    adv2.note_epoch(1, migrations=10, avg_sharers=7.0, n_threads=8,
                    new_leaf_links=14, replica_upper_pages=0)
    second = adv2.advise(1)
    assert first.enable and not second.enable


def test_memory_accounting():
    adv = ReplicationAdvisor()
    adv.note_epoch(1, migrations=0, avg_sharers=1.0, n_threads=2,
                   new_leaf_links=0, replica_upper_pages=6)
    assert adv.replica_memory_bytes(1) == 6 * PAGE_SIZE


def test_forget():
    adv = ReplicationAdvisor()
    adv.note_epoch(1, migrations=5, avg_sharers=1.0, n_threads=2,
                   new_leaf_links=1, replica_upper_pages=3)
    adv.forget(1)
    assert adv.replica_memory_bytes(1) == 0


def test_validation():
    with pytest.raises(ValueError):
        ReplicationAdvisor(hysteresis=0.5)
    adv = ReplicationAdvisor()
    with pytest.raises(ValueError):
        adv.note_epoch(1, migrations=-1, avg_sharers=1.0, n_threads=2,
                       new_leaf_links=0, replica_upper_pages=0)
