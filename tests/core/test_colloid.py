"""Colloid-style latency balancing."""

import pytest

from repro.core.colloid import LatencyBalancer


def test_migrates_while_fast_is_faster():
    b = LatencyBalancer()
    assert b.update(210.0, 600.0) is True
    assert b.migration_allowed
    assert b.last_advantage_ratio == pytest.approx(600 / 210)


def test_suspends_when_advantage_evaporates():
    b = LatencyBalancer(suspend_margin=0.10)
    assert b.update(500.0, 530.0) is False  # ratio 1.06 < 1.10
    assert b.suspended
    assert b.suspensions == 1


def test_hysteresis_prevents_flapping():
    b = LatencyBalancer(suspend_margin=0.10, resume_margin=0.25)
    b.update(500.0, 530.0)  # suspend at 1.06
    assert b.update(500.0, 580.0) is False  # 1.16: above suspend, below resume
    assert b.update(500.0, 640.0) is True  # 1.28: resumed
    assert b.resumes == 1
    # Dropping again re-suspends.
    assert b.update(500.0, 540.0) is False
    assert b.suspensions == 2


def test_disabled_always_migrates():
    b = LatencyBalancer(enabled=False)
    assert b.update(500.0, 500.0) is True
    assert not b.suspended


def test_validation():
    with pytest.raises(ValueError):
        LatencyBalancer(suspend_margin=-0.1)
    with pytest.raises(ValueError):
        LatencyBalancer(suspend_margin=0.3, resume_margin=0.2)
    b = LatencyBalancer()
    with pytest.raises(ValueError):
        b.update(0.0, 100.0)


def test_vulcan_policy_integration():
    """The policy stops migrating while the balancer says suspend."""
    import numpy as np

    from repro.core.classify import ServiceClass
    from repro.harness import ColocationExperiment
    from repro.sim.config import MachineConfig, SimulationConfig, TierConfig
    from repro.workloads.base import WorkloadSpec
    from repro.workloads.memcached import MemcachedWorkload

    unit = 10**6
    mc = MachineConfig(
        n_cores=8,
        fast=TierConfig(name="fast", capacity_bytes=64 * unit, load_latency_ns=70.0, bandwidth_gbps=205.0),
        slow=TierConfig(name="slow", capacity_bytes=512 * unit, load_latency_ns=162.0, bandwidth_gbps=25.0),
    )
    sim = SimulationConfig(page_unit_bytes=unit, epoch_seconds=0.5)
    wl = MemcachedWorkload(
        WorkloadSpec(name="w", service=ServiceClass.LC, rss_pages=128, n_threads=2,
                     accesses_per_thread=2000, populate_tier=1),
        seed=0,
    )
    exp = ColocationExperiment(
        "vulcan", [wl], machine_config=mc, sim=sim, seed=1, cores_per_workload=4,
        policy_kwargs={"colloid": True},
    )
    res = exp.run(6)
    # Force-suspend and verify migrations stop.
    exp.policy.balancer.suspended = True
    exp.policy._migrate_this_epoch = False
    before = sum(rt.engine.stats.pages_moved for rt in exp.policy.workloads.values())
    exp.policy._plan_and_migrate()
    after = sum(rt.engine.stats.pages_moved for rt in exp.policy.workloads.values())
    assert after == before
    assert res.n_epochs == 6
