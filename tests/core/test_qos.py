"""GPT / FTHR / demand (paper Eq. 1-3)."""

import pytest

from repro.core.qos import (
    FTHR_ALPHA,
    QosTracker,
    WorkloadQos,
    demand_pages,
    gpt_for,
)


class TestGpt:
    def test_saturates_at_one_when_share_covers_rss(self):
        assert gpt_for(rss_pages=100, fast_capacity_pages=1000, n_workloads=2) == 1.0

    def test_fractional_when_share_smaller(self):
        # GFMC = 500; RSS = 2000 → GPT = 0.25
        assert gpt_for(2000, 1000, 2) == pytest.approx(0.25)

    def test_gpt_drops_as_coworkers_arrive(self):
        g1 = gpt_for(5100, 3435, 1)
        g2 = gpt_for(5100, 3435, 2)
        g3 = gpt_for(5100, 3435, 3)
        assert g1 > g2 > g3

    def test_zero_rss_means_fully_covered(self):
        assert gpt_for(0, 100, 2) == 1.0

    def test_zero_workloads_rejected(self):
        with pytest.raises(ValueError):
            gpt_for(1, 1, 0)


class TestFthr:
    def test_window_average_eq1(self):
        q = WorkloadQos(pid=1, rss_pages=100)
        q.add_sample(fast_accesses=80, slow_accesses=20)
        q.add_sample(fast_accesses=60, slow_accesses=40)
        assert q.window_average() == pytest.approx(140 / 200)

    def test_first_window_initializes_directly(self):
        q = WorkloadQos(pid=1, rss_pages=100)
        q.add_sample(90, 10)
        assert q.end_window() == pytest.approx(0.9)

    def test_ema_eq2(self):
        q = WorkloadQos(pid=1, rss_pages=100)
        q.add_sample(90, 10)
        q.end_window()
        q.add_sample(50, 50)
        fthr = q.end_window()
        # α·H_t + (1-α)·H_{t-1} with α=0.8
        assert fthr == pytest.approx(FTHR_ALPHA * 0.5 + (1 - FTHR_ALPHA) * 0.9)

    def test_no_samples_gives_zero(self):
        q = WorkloadQos(pid=1, rss_pages=100)
        assert q.end_window() == 0.0

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            WorkloadQos(pid=1).add_sample(-1, 0)

    def test_under_allocated_flag(self):
        q = WorkloadQos(pid=1, rss_pages=100, gpt=0.5)
        q.add_sample(10, 90)
        q.end_window()
        assert q.under_allocated
        q.add_sample(90, 10)
        q.end_window()
        assert not q.under_allocated


class TestDemand:
    def test_under_target_grows_hard(self):
        """Eq. 3's log² factor makes under-target demand saturate at RSS."""
        d = demand_pages(alloc_pages=100, gpt=0.5, fthr=0.1, rss_pages=5000)
        assert d == 5000

    def test_mildly_under_target_grows_partially(self):
        d = demand_pages(alloc_pages=100, gpt=0.5, fthr=0.4999, rss_pages=5000)
        assert 100 < d < 5000

    def test_lc_release_keeps_hot_set(self):
        d = demand_pages(1000, gpt=0.2, fthr=0.9, rss_pages=5000, hot_set_pages=400, latency_critical=True)
        assert d == 460  # 400 × 1.15

    def test_lc_release_never_exceeds_alloc(self):
        d = demand_pages(300, gpt=0.2, fthr=0.9, rss_pages=5000, hot_set_pages=400, latency_critical=True)
        assert d == 300

    def test_lc_without_estimate_holds(self):
        assert demand_pages(300, gpt=0.2, fthr=0.9, rss_pages=5000) == 300

    def test_be_release_shrinks_toward_kappa_gpt(self):
        # gpt 0.2 → target 0.4; fthr 0.8 → shrink to half.
        d = demand_pages(1000, gpt=0.2, fthr=0.8, rss_pages=5000, latency_critical=False)
        assert d == 500

    def test_be_within_headroom_holds(self):
        d = demand_pages(1000, gpt=0.2, fthr=0.35, rss_pages=5000, latency_critical=False)
        assert d == 1000

    def test_zero_rss(self):
        assert demand_pages(0, 1.0, 0.0, 0) == 0


class TestTracker:
    def test_register_refreshes_all_gpts(self):
        t = QosTracker(fast_capacity_pages=1000)
        a = t.register(1, rss_pages=1000)
        assert a.gpt == 1.0
        b = t.register(2, rss_pages=1000)
        assert a.gpt == pytest.approx(0.5)
        assert b.gpt == pytest.approx(0.5)
        t.unregister(2)
        assert a.gpt == 1.0

    def test_duplicate_pid_rejected(self):
        t = QosTracker(100)
        t.register(1, 10)
        with pytest.raises(ValueError):
            t.register(1, 10)

    def test_set_rss_rederives_gpt(self):
        t = QosTracker(1000)
        q = t.register(1, 500)
        assert q.gpt == 1.0
        t.set_rss(1, 4000)
        assert q.gpt == pytest.approx(0.25)

    def test_end_epoch_returns_fthr_map(self):
        t = QosTracker(1000)
        t.register(1, 100)
        t.workloads[1].add_sample(3, 1)
        assert t.end_epoch() == {1: pytest.approx(0.75)}

    def test_demands_uses_service_class(self):
        t = QosTracker(1000)
        t.register(1, 2000)
        t.workloads[1].gpt = 0.2
        t.workloads[1].fthr = 0.8
        t.workloads[1]._initialized = True
        d_lc = t.demands({1: 1000}, hot_sets={1: 100}, latency_critical={1: True})
        d_be = t.demands({1: 1000}, hot_sets={1: 100}, latency_critical={1: False})
        assert d_lc[1] == 115
        assert d_be[1] == 500

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QosTracker(0)
