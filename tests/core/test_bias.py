"""Biased migration policy: candidate selection and Table 1 dispatch."""

import numpy as np

from repro.core.bias import BiasedMigrationPolicy
from repro.core.classify import PageClass
from repro.mm.frame_alloc import FrameAllocator
from repro.mm.shadow import ShadowTracker
from repro.profiling.base import AccessBatch
from repro.profiling.pebs import PebsProfiler
from tests.conftest import populated_space


def setup(fast=4, slow=64, n_pages=12, n_threads=2):
    alloc = FrameAllocator(fast_frames=fast, slow_frames=slow)
    space = populated_space(alloc, n_pages=n_pages, n_threads=n_threads)
    prof = PebsProfiler(period=1)  # exact counting for determinism
    policy = BiasedMigrationPolicy(hot_threshold=4.0)
    return alloc, space, prof, policy


def feed(prof, space, vpn, n, write=False, tid=None):
    owner_tid = tid if tid is not None else 0
    batch = AccessBatch(
        pid=space.process.pid,
        tid=owner_tid,
        vpns=np.full(n, vpn, dtype=np.int64),
        is_write=np.full(n, write, dtype=bool),
    )
    prof.observe(batch)
    space.process.repl.note_access(vpn, owner_tid)


def test_only_hot_slow_pages_become_candidates():
    alloc, space, prof, policy = setup()
    vma = space.process.vmas[0]
    slow_vpn = vma.start_vpn + 6  # beyond the 4 fast frames
    fast_vpn = vma.start_vpn + 0
    cold_vpn = vma.start_vpn + 7
    feed(prof, space, slow_vpn, 20)
    feed(prof, space, fast_vpn, 20)
    feed(prof, space, cold_vpn, 1)
    n = policy.refresh_candidates(space.process.pid, prof, space.process.repl, alloc)
    assert n == 1
    picks = policy.select_promotions(space.process.pid, 10, prof)
    assert [p.vpn for p in picks] == [slow_vpn]
    assert picks[0].dest_tier == 0


def test_read_intensive_goes_async_write_intensive_sync():
    alloc, space, prof, policy = setup()
    vma = space.process.vmas[0]
    rd, wr = vma.start_vpn + 6, vma.start_vpn + 7
    feed(prof, space, rd, 20, write=False, tid=0)
    feed(prof, space, wr, 20, write=True, tid=1)
    policy.refresh_candidates(space.process.pid, prof, space.process.repl, alloc)
    picks = {p.vpn: p for p in policy.select_promotions(space.process.pid, 10, prof)}
    assert picks[rd].sync is False
    assert picks[rd].page_class is PageClass.PRIVATE_READ
    assert picks[wr].sync is True
    assert picks[wr].page_class is PageClass.PRIVATE_WRITE


def test_private_read_served_before_shared_write():
    alloc, space, prof, policy = setup()
    vma = space.process.vmas[0]
    pr, sw = vma.start_vpn + 6, vma.start_vpn + 7
    feed(prof, space, pr, 10, write=False, tid=0)
    feed(prof, space, sw, 10, write=True, tid=0)
    feed(prof, space, sw, 10, write=True, tid=1)  # second thread → shared
    policy.refresh_candidates(space.process.pid, prof, space.process.repl, alloc)
    picks = policy.select_promotions(space.process.pid, 1, prof)
    assert picks[0].vpn == pr


def test_demotion_selects_coldest_fast_pages():
    alloc, space, prof, policy = setup(fast=4)
    vma = space.process.vmas[0]
    # Pages 0..3 are fast; heat them unevenly.
    for i, count in enumerate([50, 2, 40, 1]):
        feed(prof, space, vma.start_vpn + i, count, tid=i % 2)
    demos = policy.select_demotions(space.process.pid, 2, prof, space.process.repl, alloc)
    assert sorted(p.vpn for p in demos) == [vma.start_vpn + 1, vma.start_vpn + 3]
    assert all(p.dest_tier == 1 for p in demos)


def test_demotion_prefers_shadowed_clean_pages_at_similar_heat():
    alloc, space, prof, policy = setup(fast=4)
    vma = space.process.vmas[0]
    shadow = ShadowTracker()
    # Four equally-warm fast pages; one has a retained shadow.
    for i in range(4):
        feed(prof, space, vma.start_vpn + i, 10, tid=i % 2)
    pfn0 = space.translate(vma.start_vpn + 0)
    shadow.retain(fast_pfn=pfn0, shadow_pfn=999)
    demos = policy.select_demotions(space.process.pid, 1, prof, space.process.repl, alloc, shadow=shadow)
    assert demos[0].vpn == vma.start_vpn + 0


def test_budget_zero_returns_nothing():
    alloc, space, prof, policy = setup()
    assert policy.select_promotions(space.process.pid, 0, prof) == []
    assert policy.select_demotions(space.process.pid, 0, prof, space.process.repl, alloc) == []


def test_forget_clears_queues():
    alloc, space, prof, policy = setup()
    vma = space.process.vmas[0]
    feed(prof, space, vma.start_vpn + 6, 20)
    policy.refresh_candidates(space.process.pid, prof, space.process.repl, alloc)
    policy.forget(space.process.pid)
    assert policy.select_promotions(space.process.pid, 10, prof) == []
