"""Admission control and rolling service classification."""

import pytest

from repro.core.classify import ServiceClass
from repro.core.whitelist import NotWhitelistedError, ServiceClassifier, Whitelist


class TestWhitelist:
    def test_default_deny(self):
        wl = Whitelist()
        assert not wl.is_allowed("memcached")
        with pytest.raises(NotWhitelistedError):
            wl.check("memcached")
        assert wl.denied_attempts == ["memcached"]

    def test_allow_and_revoke(self):
        wl = Whitelist()
        wl.allow("memcached")
        wl.check("memcached")  # no raise
        wl.revoke("memcached")
        with pytest.raises(NotWhitelistedError):
            wl.check("memcached")

    def test_default_allow_audits_only(self):
        wl = Whitelist(default_allow=True)
        wl.check("anything")
        assert wl.denied_attempts == []


class TestServiceClassifier:
    def test_conservative_until_window_fills(self):
        c = ServiceClassifier(min_window=4)
        c.register(1)
        for _ in range(3):
            assert c.observe(1, 1.0) is ServiceClass.LC
        # Fourth steady-full observation flips it to BE.
        assert c.observe(1, 1.0) is ServiceClass.BE
        assert c.reclassifications == 1

    def test_bursty_stays_lc(self):
        c = ServiceClassifier(min_window=4)
        c.register(1)
        for u in (1.0, 0.1, 1.0, 0.1, 1.0, 0.1):
            out = c.observe(1, u)
        assert out is ServiceClass.LC

    def test_declared_never_overridden(self):
        c = ServiceClassifier(min_window=2)
        c.register(1, declared=ServiceClass.LC)
        for _ in range(8):
            assert c.observe(1, 1.0) is ServiceClass.LC
        assert c.reclassifications == 0

    def test_phase_change_reclassifies(self):
        c = ServiceClassifier(min_window=4)
        c.register(1)
        for _ in range(16):
            c.observe(1, 1.0)
        assert c.service_of(1) is ServiceClass.BE
        for _ in range(16):
            c.observe(1, 0.2)
        assert c.service_of(1) is ServiceClass.LC
        assert c.reclassifications >= 2

    def test_utilization_clipped(self):
        c = ServiceClassifier(min_window=1)
        c.register(1)
        c.observe(1, 5.0)  # clipped to 1.0, no crash
        assert c.service_of(1) in (ServiceClass.LC, ServiceClass.BE)

    def test_unknown_pid_rejected(self):
        c = ServiceClassifier()
        with pytest.raises(KeyError):
            c.observe(9, 0.5)
        with pytest.raises(KeyError):
            c.service_of(9)

    def test_duplicate_register_rejected(self):
        c = ServiceClassifier()
        c.register(1)
        with pytest.raises(ValueError):
            c.register(1)

    def test_unregister_idempotent(self):
        c = ServiceClassifier()
        c.register(1)
        c.unregister(1)
        c.unregister(1)

    def test_min_window_validation(self):
        with pytest.raises(ValueError):
            ServiceClassifier(min_window=0)
