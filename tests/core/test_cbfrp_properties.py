"""Property-based tests for CBFRP (Algorithm 1) invariants.

Uses hypothesis when installed; otherwise falls back to seeded random
scenario generation so the same invariants run everywhere.  Either way
the core is :func:`check_invariants`, applied to randomized multi-round
demand sequences with a persistent credit ledger:

* **conservation** — credits are zero-sum across grants and reclaims;
* **capacity** — Σ allocations never exceeds fast-tier capacity;
* **no over-grant** — nobody is allocated beyond its demand;
* **floor** — nobody is starved below ``min(demand, GFMC)``: donors
  only give up *unused* share, and BE expropriation stops at GFMC;
* **LC priority** — an unsatisfied LC borrower implies there was
  nothing left to take (no donor surplus, no BE holding above GFMC);
* **determinism** — identical inputs (including RNG seed and ledger
  state) produce identical allocations and credit movements.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cbfrp import INITIAL_CREDITS, CreditLedger, run_cbfrp
from repro.core.classify import ServiceClass

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover — the seeded fallback runs instead
    HAVE_HYPOTHESIS = False


# -- scenario model --------------------------------------------------------------


def make_scenario(
    n: int, capacity: int, demand_rounds: list[list[int]], lc_mask: list[bool], rng_seed: int
) -> dict:
    pids = [100 + i for i in range(n)]
    service = {
        pid: ServiceClass.LC if lc else ServiceClass.BE for pid, lc in zip(pids, lc_mask)
    }
    return {
        "pids": pids,
        "capacity": capacity,
        "service": service,
        "rounds": [dict(zip(pids, row)) for row in demand_rounds],
        "rng_seed": rng_seed,
    }


def random_scenario(rng: np.random.Generator) -> dict:
    n = int(rng.integers(1, 9))
    capacity = int(rng.integers(0, 513))
    n_rounds = int(rng.integers(1, 6))
    demand_rounds = [[int(d) for d in rng.integers(0, 257, size=n)] for _ in range(n_rounds)]
    lc_mask = [bool(b) for b in rng.integers(0, 2, size=n)]
    return make_scenario(n, capacity, demand_rounds, lc_mask, int(rng.integers(0, 2**16)))


# -- the invariants --------------------------------------------------------------


def check_invariants(scenario: dict) -> None:
    ledger = CreditLedger()
    for pid in scenario["pids"]:
        ledger.ensure(pid)
    rng = np.random.default_rng(scenario["rng_seed"])
    credit_sum = sum(ledger.credits.values())
    assert credit_sum == INITIAL_CREDITS * len(scenario["pids"])

    for demands in scenario["rounds"]:
        state = run_cbfrp(scenario["capacity"], demands, scenario["service"], ledger, rng=rng)
        alloc = state.allocations
        gfmc = state.gfmc_units

        # conservation: every transfer is zero-sum.
        assert sum(ledger.credits.values()) == credit_sum

        # capacity: the partition never overcommits the fast tier.
        assert sum(alloc.values()) <= scenario["capacity"]

        for pid, demand in demands.items():
            # no over-grant, and no starvation below the guaranteed floor.
            assert 0 <= alloc[pid] <= demand
            assert alloc[pid] >= min(demand, gfmc), (
                f"pid {pid} starved: alloc={alloc[pid]} demand={demand} gfmc={gfmc}"
            )

        # LC priority: an unsatisfied LC borrower means the round ran
        # completely dry — no donor surplus and no BE task above GFMC.
        lc_unsatisfied = any(
            alloc[pid] < demands[pid]
            for pid, svc in scenario["service"].items()
            if svc is ServiceClass.LC
        )
        if lc_unsatisfied:
            # Undistributed donor surplus is exactly n*GFMC - Σalloc
            # (grants conserve alloc+surplus; expropriation conserves
            # alloc): it must be fully drained...
            assert sum(alloc.values()) == gfmc * len(demands)
            # ...and every BE task squeezed down to its guaranteed share.
            assert all(
                alloc[pid] <= gfmc
                for pid, svc in scenario["service"].items()
                if svc is ServiceClass.BE
            )


def check_determinism(scenario: dict) -> None:
    outputs = []
    for _ in range(2):
        ledger = CreditLedger()
        for pid in scenario["pids"]:
            ledger.ensure(pid)
        rng = np.random.default_rng(scenario["rng_seed"])
        states = [
            run_cbfrp(scenario["capacity"], demands, scenario["service"], ledger, rng=rng)
            for demands in scenario["rounds"]
        ]
        outputs.append((
            [s.allocations for s in states],
            [s.transfers for s in states],
            [s.expropriated for s in states],
            dict(ledger.credits),
        ))
    assert outputs[0] == outputs[1]


# -- drivers: hypothesis when present, seeded sweep otherwise --------------------

if HAVE_HYPOTHESIS:

    @st.composite
    def scenarios(draw):
        n = draw(st.integers(min_value=1, max_value=8))
        capacity = draw(st.integers(min_value=0, max_value=512))
        n_rounds = draw(st.integers(min_value=1, max_value=5))
        demand_rounds = [
            draw(st.lists(st.integers(min_value=0, max_value=256), min_size=n, max_size=n))
            for _ in range(n_rounds)
        ]
        lc_mask = draw(st.lists(st.booleans(), min_size=n, max_size=n))
        rng_seed = draw(st.integers(min_value=0, max_value=2**16))
        return make_scenario(n, capacity, demand_rounds, lc_mask, rng_seed)

    @settings(max_examples=150, deadline=None)
    @given(scenarios())
    def test_invariants_property(scenario):
        check_invariants(scenario)

    @settings(max_examples=50, deadline=None)
    @given(scenarios())
    def test_determinism_property(scenario):
        check_determinism(scenario)

else:  # pragma: no cover — exercised only where hypothesis is absent

    @pytest.mark.parametrize("case", range(150))
    def test_invariants_property(case):
        check_invariants(random_scenario(np.random.default_rng(case)))

    @pytest.mark.parametrize("case", range(50))
    def test_determinism_property(case):
        check_determinism(random_scenario(np.random.default_rng(case)))


def test_fallback_generator_shape():
    """The seeded fallback produces valid scenarios even when hypothesis
    is installed (keeps the no-hypothesis path from bit-rotting)."""
    scenario = random_scenario(np.random.default_rng(7))
    assert scenario["pids"]
    assert len(scenario["rounds"]) >= 1
    assert set(scenario["rounds"][0]) == set(scenario["pids"])
    check_invariants(scenario)
    check_determinism(scenario)


# -- directed edges the random walk may miss -------------------------------------


def test_zero_capacity_allocates_nothing():
    ledger = CreditLedger()
    state = run_cbfrp(0, {1: 10, 2: 5}, {1: ServiceClass.LC, 2: ServiceClass.BE}, ledger)
    assert all(v == 0 for v in state.allocations.values())


def test_single_workload_gets_min_of_demand_and_capacity():
    ledger = CreditLedger()
    state = run_cbfrp(100, {1: 40}, {1: ServiceClass.LC}, ledger)
    assert state.allocations == {1: 40}
    state = run_cbfrp(30, {1: 40}, {1: ServiceClass.BE}, ledger)
    assert state.allocations == {1: 30}


def test_lc_expropriates_be_above_gfmc():
    """Directed lines 11-13 case: donors exhausted, BE above GFMC, LC short."""
    ledger = CreditLedger()
    service = {1: ServiceClass.LC, 2: ServiceClass.BE}
    # Round 1: LC idle, BE hungry — BE borrows the LC's whole surplus.
    state1 = run_cbfrp(20, {1: 0, 2: 20}, service, ledger)
    assert state1.allocations[2] == 20
    # Round 2: LC wakes up wanting everything; BE still demands all.
    state2 = run_cbfrp(20, {1: 20, 2: 20}, service, ledger)
    assert state2.allocations[1] >= 10  # at least its GFMC share back
    assert state2.allocations[1] + state2.allocations[2] <= 20
