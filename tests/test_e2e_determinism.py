"""End-to-end determinism: the whole stack, not just the obs layer.

tests/obs/test_determinism.py proves tracing neither perturbs nor
varies; this extends the guarantee to the experiment itself: two
same-seed :class:`ColocationExperiment` runs — fresh machine, policy,
workloads each time — must produce identical per-workload metrics
(every recorded timeseries, exactly), identical experiment-level
series, identical obs event streams, and identical metrics-registry
contents.  This is the foundation the sweep cache and the serial ≡
parallel differential guarantee stand on.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.harness import ColocationExperiment
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.sim.config import SimulationConfig
from repro.workloads.mixes import dilemma_pair, paper_colocation_mix

#: every per-epoch series WorkloadTimeseries records
SERIES_FIELDS = (
    "epochs", "ops", "avg_access_cycles", "fast_pages", "rss_pages",
    "fthr_true", "hot_pages", "hot_in_fast", "cold_in_fast",
    "promotions", "demotions", "stall_cycles", "fthr_policy", "gpt", "quota",
)


def run_once(policy: str, mix_name: str, *, seed: int, epochs: int = 6):
    sim = SimulationConfig(epoch_seconds=0.5)
    if mix_name == "dilemma":
        mix = dilemma_pair(sim, seed=seed, accesses_per_thread=1200)
    else:
        mix = paper_colocation_mix(sim, seed=seed, accesses_per_thread=800)
    exp = ColocationExperiment(policy, mix, sim=sim, seed=seed)
    return exp.run(epochs)


def assert_results_identical(a, b) -> None:
    assert a.policy_name == b.policy_name
    assert a.n_epochs == b.n_epochs
    assert a.free_fast_pages == b.free_fast_pages
    assert a.migration_cycles == b.migration_cycles
    assert set(a.workloads) == set(b.workloads)
    for pid, ts_a in a.workloads.items():
        ts_b = b.workloads[pid]
        assert ts_a.name == ts_b.name
        for field in SERIES_FIELDS:
            assert getattr(ts_a, field) == getattr(ts_b, field), (
                f"{ts_a.name}.{field} diverged between same-seed runs"
            )


@pytest.mark.parametrize("policy", ["vulcan", "memtis", "tpp"])
def test_same_seed_runs_identical_metrics(policy):
    first = run_once(policy, "dilemma", seed=11)
    second = run_once(policy, "dilemma", seed=11)
    assert_results_identical(first, second)


def test_same_seed_identical_on_paper_mix():
    first = run_once("vulcan", "paper", seed=3, epochs=4)
    second = run_once("vulcan", "paper", seed=3, epochs=4)
    assert_results_identical(first, second)


def test_different_seeds_actually_differ():
    """Guards against the vacuous pass where seeds are ignored."""
    a = run_once("vulcan", "dilemma", seed=11)
    b = run_once("vulcan", "dilemma", seed=12)
    assert any(
        a.workloads[pid].ops != b.workloads[pid].ops for pid in a.workloads
    )


def test_same_seed_runs_emit_identical_obs_state():
    """Event streams *and* the metrics registry match event-for-event."""
    tracer = get_tracer()
    registry = get_registry()
    try:
        tracer.enable()
        registry.enabled = True
        registry.reset()
        first = run_once("vulcan", "dilemma", seed=5)
        events_first = tracer.events()
        metrics_first = registry.collect()

        tracer.enable()  # fresh buffer + clock
        registry.reset()
        second = run_once("vulcan", "dilemma", seed=5)
        events_second = tracer.events()
        metrics_second = registry.collect()
    finally:
        tracer.disable()
        tracer.reset()
        registry.enabled = False
        registry.reset()
    assert_results_identical(first, second)
    assert len(events_first) == len(events_second) > 0
    assert events_first == events_second
    assert metrics_first == metrics_second
    assert metrics_first["counters"]  # the run actually exercised instruments


# -- frozen goldens: cross-commit, not just cross-run ---------------------------
#
# The tests above prove two same-seed runs of *this* commit agree.  The
# goldens in tests/golden/ pin the metrics of the pre-refactor
# (object-per-page) implementation bit-for-bit: ExperimentResult.to_dict()
# round-trips floats losslessly through JSON, so equality here means the
# struct-of-arrays core changed *nothing* observable.  Regenerate (only
# when a behaviour change is intended) with
# ``PYTHONPATH=src python tests/golden/capture.py``.

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN_FILES = sorted(GOLDEN_DIR.glob("e2e_*.json"))


def test_golden_matrix_is_present():
    """The frozen matrix must not silently shrink."""
    assert len(GOLDEN_FILES) == 10


@pytest.mark.parametrize("path", GOLDEN_FILES, ids=lambda p: p.stem)
def test_golden_metrics_bit_identical(path):
    from repro.cli import _run_one

    frozen = json.loads(path.read_text())
    cfg = frozen["config"]
    res = _run_one(
        cfg["policy"], cfg["mix"], cfg["epochs"], cfg["accesses_per_thread"], cfg["seed"]
    )
    # Compare through the same JSON round-trip capture.py used, so float
    # repr and key types are identical on both sides.
    got = json.loads(json.dumps(res.to_dict(), sort_keys=True))
    assert got == frozen["result"], (
        f"{path.name}: metrics diverged from the frozen pre-refactor run"
    )


# -- legacy vs batched epoch kernel: differential guarantee ---------------------
#
# The batched epoch path (EpochPlan + record_plan/observe_plan + the fused
# migrate kernel) must be *bit-identical* to the legacy per-batch path it
# replaced; REPRO_LEGACY_EPOCH=1 keeps the old path alive exactly so this
# differential can be run.  Any divergence here means the fused kernel
# reordered a float add or consumed RNG differently.


def test_legacy_vs_batched_epoch_kernel_bit_identical(monkeypatch):
    monkeypatch.setenv("REPRO_LEGACY_EPOCH", "1")
    legacy = run_once("vulcan", "paper", seed=3, epochs=4)
    monkeypatch.delenv("REPRO_LEGACY_EPOCH")
    batched = run_once("vulcan", "paper", seed=3, epochs=4)
    assert_results_identical(legacy, batched)
    assert json.dumps(legacy.to_dict(), sort_keys=True) \
        == json.dumps(batched.to_dict(), sort_keys=True)


def test_legacy_vs_batched_on_dynamic_scenario(monkeypatch):
    """Churn (admit/depart/restart + faults) through both epoch kernels."""
    from repro.scenario import run_scenario

    monkeypatch.setenv("REPRO_LEGACY_EPOCH", "1")
    legacy = run_scenario("churn")
    monkeypatch.delenv("REPRO_LEGACY_EPOCH")
    batched = run_scenario("churn")
    assert legacy.spec_hash == batched.spec_hash
    assert json.dumps(legacy.result.to_dict(), sort_keys=True) \
        == json.dumps(batched.result.to_dict(), sort_keys=True)


def test_legacy_vs_batched_fuzz_campaign(monkeypatch):
    """A short fuzz campaign (random scenarios + oracle) is path-invariant."""
    from repro.fuzz.runner import campaign

    monkeypatch.setenv("REPRO_LEGACY_EPOCH", "1")
    legacy = campaign(seed=1234, runs=2, shrink=False, parity_check=False)
    monkeypatch.delenv("REPRO_LEGACY_EPOCH")
    batched = campaign(seed=1234, runs=2, shrink=False, parity_check=False)
    assert json.dumps(legacy, sort_keys=True) == json.dumps(batched, sort_keys=True)
