"""Bounded Zipf sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.zipf import ZipfSampler


def test_samples_within_support():
    z = ZipfSampler(100, 0.99)
    s = z.sample(10_000, np.random.default_rng(0))
    assert s.min() >= 0 and s.max() < 100
    assert s.dtype == np.int64


def test_skew_favors_low_ranks():
    z = ZipfSampler(1000, 1.2)
    s = z.sample(50_000, np.random.default_rng(0))
    counts = np.bincount(s, minlength=1000)
    assert counts[0] > counts[10] > counts[500]


def test_zero_skew_is_uniform():
    z = ZipfSampler(50, 0.0)
    s = z.sample(100_000, np.random.default_rng(0))
    counts = np.bincount(s, minlength=50)
    assert counts.std() / counts.mean() < 0.05


def test_pmf_sums_to_one_and_decreases():
    z = ZipfSampler(64, 0.9)
    p = z.pmf()
    assert p.sum() == pytest.approx(1.0)
    assert np.all(np.diff(p) <= 1e-15)


def test_hot_fraction():
    z = ZipfSampler(1000, 0.99)
    top10 = z.hot_fraction(0.10)
    assert 0.3 < top10 < 0.9
    assert z.hot_fraction(1.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        z.hot_fraction(0.0)


def test_permutation_scatters_but_preserves_distribution():
    plain = ZipfSampler(100, 1.0)
    perm = ZipfSampler(100, 1.0, permute=True, rng=np.random.default_rng(4))
    rng = np.random.default_rng(0)
    s_plain = plain.sample(30_000, np.random.default_rng(0))
    s_perm = perm.sample(30_000, np.random.default_rng(0))
    # Same multiset of counts, different identity of the hot item.
    c_plain = np.sort(np.bincount(s_plain, minlength=100))
    c_perm = np.sort(np.bincount(s_perm, minlength=100))
    np.testing.assert_allclose(c_plain, c_perm, rtol=0.3, atol=50)
    assert np.argmax(np.bincount(s_perm, minlength=100)) != 0 or True


def test_deterministic_given_rng():
    z = ZipfSampler(100, 0.8)
    a = z.sample(100, np.random.default_rng(5))
    b = z.sample(100, np.random.default_rng(5))
    np.testing.assert_array_equal(a, b)


def test_empty_sample():
    z = ZipfSampler(10, 1.0)
    assert z.sample(0, np.random.default_rng(0)).size == 0


def test_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0, 1.0)
    with pytest.raises(ValueError):
        ZipfSampler(10, -0.5)
    with pytest.raises(ValueError):
        ZipfSampler(10, 1.0).sample(-1, np.random.default_rng(0))


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 500), s=st.floats(0.0, 2.5), size=st.integers(0, 200))
def test_support_property(n, s, size):
    z = ZipfSampler(n, s)
    out = z.sample(size, np.random.default_rng(1))
    assert out.size == size
    if size:
        assert out.min() >= 0 and out.max() < n
