"""Workload generators: access-shape invariants for each application."""

import numpy as np
import pytest

from repro.core.classify import ServiceClass
from repro.mm.address_space import Vma
from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.liblinear import LiblinearWorkload
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.microbench import MicrobenchWorkload, scenario
from repro.workloads.pagerank import PageRankWorkload


def bind(wl: Workload, pid: int = 1) -> Vma:
    vma = Vma(start_vpn=1000, n_pages=wl.spec.rss_pages)
    wl.bind(pid, vma)
    return vma


def all_accesses(wl: Workload, epoch: int = 0):
    batches = wl.generate(epoch)
    vpns = np.concatenate([b.vpns for b in batches])
    writes = np.concatenate([b.is_write for b in batches])
    return batches, vpns, writes


def spec(name="w", service=ServiceClass.BE, rss=512, threads=4, apt=2000):
    return WorkloadSpec(name=name, service=service, rss_pages=rss, n_threads=threads, accesses_per_thread=apt)


class TestBase:
    def test_generate_before_bind_rejected(self):
        wl = MemcachedWorkload(spec(), seed=0)
        with pytest.raises(RuntimeError):
            wl.generate(0)

    def test_one_batch_per_thread(self):
        wl = MicrobenchWorkload(spec(threads=6), seed=0)
        bind(wl)
        batches = wl.generate(0)
        assert len(batches) == 6
        assert sorted(b.tid for b in batches) == list(range(6))

    def test_accesses_stay_in_vma(self):
        for wl in (
            MemcachedWorkload(spec(), seed=1),
            PageRankWorkload(spec(), seed=1),
            LiblinearWorkload(spec(), seed=1),
            MicrobenchWorkload(spec(), seed=1),
        ):
            vma = bind(wl)
            _, vpns, _ = all_accesses(wl)
            assert vpns.min() >= vma.start_vpn
            assert vpns.max() < vma.end_vpn

    def test_deterministic_generation(self):
        a = MemcachedWorkload(spec(), seed=3)
        b = MemcachedWorkload(spec(), seed=3)
        bind(a), bind(b)
        _, va, wa = all_accesses(a, epoch=2)
        _, vb, wb = all_accesses(b, epoch=2)
        np.testing.assert_array_equal(va, vb)
        np.testing.assert_array_equal(wa, wb)


class TestMemcached:
    def test_get_set_ratio(self):
        wl = MemcachedWorkload(spec(apt=20_000), seed=0)
        bind(wl)
        _, _, writes = all_accesses(wl)
        assert writes.mean() == pytest.approx(0.10, abs=0.02)
        assert wl.write_fraction() == pytest.approx(0.10)

    def test_hot_keyset_receives_90_percent(self):
        wl = MemcachedWorkload(spec(rss=1000, apt=20_000), seed=0)
        bind(wl)
        _, vpns, _ = all_accesses(wl)
        counts = np.bincount(vpns - 1000, minlength=1000)
        top100 = np.sort(counts)[-100:].sum()
        assert top100 / counts.sum() == pytest.approx(0.90, abs=0.03)

    def test_bursty_issue_rate(self):
        wl = MemcachedWorkload(spec(service=ServiceClass.LC), seed=0)
        bind(wl)
        rates = [wl.issue_rate(e) for e in range(16)]
        assert max(rates) > 0.9
        assert min(rates) < 0.5  # idles between bursts

    def test_wss_is_hot_keyset(self):
        wl = MemcachedWorkload(spec(rss=1000), seed=0)
        bind(wl)
        assert wl.wss_pages() == 100


class TestPageRank:
    def test_gathers_are_reads_sweep_has_writes(self):
        wl = PageRankWorkload(spec(apt=10_000), seed=0)
        bind(wl)
        _, _, writes = all_accesses(wl)
        assert 0.0 < writes.mean() < 0.25
        assert wl.write_fraction() == pytest.approx(0.1)

    def test_degree_skew_on_adjacency(self):
        wl = PageRankWorkload(spec(rss=1000, apt=20_000), seed=0)
        bind(wl)
        _, vpns, _ = all_accesses(wl)
        adj = vpns[vpns < 1000 + wl._adj_pages] - 1000
        counts = np.bincount(adj, minlength=wl._adj_pages)
        assert counts.max() > 5 * max(np.median(counts), 1)

    def test_rank_slices_private_per_thread(self):
        wl = PageRankWorkload(spec(rss=1000, threads=4, apt=4000), seed=0)
        bind(wl)
        batches = wl.generate(0)
        rank_base = 1000 + wl._adj_pages
        slices = []
        for b in batches:
            rank_vpns = b.vpns[b.vpns >= rank_base]
            if rank_vpns.size:
                slices.append((rank_vpns.min(), rank_vpns.max()))
        # Disjoint per-thread ranges.
        slices.sort()
        for (lo1, hi1), (lo2, _) in zip(slices, slices[1:]):
            assert hi1 < lo2

    def test_saturating_issue_rate(self):
        wl = PageRankWorkload(spec(), seed=0)
        assert all(wl.issue_rate(e) == 1.0 for e in range(8))


class TestLiblinear:
    def test_scan_covers_shards_sequentially(self):
        wl = LiblinearWorkload(spec(rss=800, threads=2, apt=2000), seed=0)
        bind(wl)
        b0 = wl.generate(0)[0]
        scan = b0.vpns[b0.vpns >= 1000 + wl._feature_pages]
        # Sequential positions: consecutive diffs are 0/1 modulo wrap.
        diffs = np.diff(scan)
        assert ((diffs == 1) | (diffs < 0) | (diffs == 0)).all()

    def test_feature_region_hot_and_write_heavy(self):
        wl = LiblinearWorkload(spec(rss=1000, apt=20_000), seed=0)
        bind(wl)
        _, vpns, writes = all_accesses(wl)
        feat_mask = vpns < 1000 + wl._feature_pages
        assert feat_mask.mean() == pytest.approx(wl.feature_access_frac, abs=0.05)
        assert writes[feat_mask].mean() == pytest.approx(0.5, abs=0.05)
        assert writes[~feat_mask].mean() == 0.0  # scans never write

    def test_scan_position_advances_across_epochs(self):
        wl = LiblinearWorkload(spec(rss=4000, threads=1, apt=100), seed=0)
        bind(wl)
        s0 = wl.generate(0)[0].vpns
        s1 = wl.generate(1)[0].vpns
        scan0 = s0[s0 >= 1000 + wl._feature_pages]
        scan1 = s1[s1 >= 1000 + wl._feature_pages]
        assert scan1.min() > scan0.min()  # kept streaming forward


class TestMicrobench:
    def test_read_ratio_respected(self):
        wl = MicrobenchWorkload(spec(apt=20_000), seed=0, read_ratio=0.7)
        bind(wl)
        _, _, writes = all_accesses(wl)
        assert writes.mean() == pytest.approx(0.3, abs=0.02)

    def test_accesses_confined_to_wss(self):
        wl = MicrobenchWorkload(spec(rss=1024), seed=0, wss_pages=128)
        bind(wl)
        _, vpns, _ = all_accesses(wl)
        assert np.unique(vpns).size <= 128

    def test_private_mode_separates_threads(self):
        wl = MicrobenchWorkload(spec(rss=1024, threads=4), seed=0, wss_pages=128, shared_threads=False)
        bind(wl)
        batches = wl.generate(0)
        ranges = [(b.vpns.min(), b.vpns.max()) for b in batches]
        ranges.sort()
        for (lo1, hi1), (lo2, _) in zip(ranges, ranges[1:]):
            assert hi1 < lo2

    def test_scenarios_sized_to_fast_tier(self):
        small = scenario("small", fast_tier_pages=1000)
        medium = scenario("medium", fast_tier_pages=1000)
        large = scenario("large", fast_tier_pages=1000)
        assert small.wss_pages() == 500
        assert medium.wss_pages() == 1000
        assert large.wss_pages() == 2000
        assert large.spec.rss_pages == 4 * large.wss_pages()
        with pytest.raises(ValueError):
            scenario("huge", 1000)

    def test_wss_validation(self):
        with pytest.raises(ValueError):
            MicrobenchWorkload(spec(rss=100), wss_pages=200)
        with pytest.raises(ValueError):
            MicrobenchWorkload(spec(), read_ratio=1.5)
