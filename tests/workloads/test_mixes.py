"""Co-location mix builders (Table 2 fidelity)."""

import pytest

from repro.core.classify import ServiceClass
from repro.sim.config import SimulationConfig
from repro.workloads.mixes import (
    INTENSITY,
    PAPER_RSS_BYTES,
    PAPER_START_SECONDS,
    dilemma_pair,
    paper_colocation_mix,
)


def test_table2_rss_values():
    assert PAPER_RSS_BYTES == {
        "memcached": 51 * 10**9,
        "pagerank": 42 * 10**9,
        "liblinear": 69 * 10**9,
    }


def test_paper_mix_composition():
    mix = paper_colocation_mix()
    names = [w.name for w in mix]
    assert names == ["memcached", "pagerank", "liblinear"]
    services = {w.name: w.service for w in mix}
    assert services["memcached"] is ServiceClass.LC
    assert services["pagerank"] is ServiceClass.BE
    assert services["liblinear"] is ServiceClass.BE


def test_rss_scaled_by_page_unit():
    sim = SimulationConfig()  # 10 MB pages
    mix = paper_colocation_mix(sim)
    rss = {w.name: w.spec.rss_pages for w in mix}
    assert rss == {"memcached": 5100, "pagerank": 4200, "liblinear": 6900}


def test_start_epochs_follow_section_5_3():
    sim = SimulationConfig(epoch_seconds=2.0)
    mix = paper_colocation_mix(sim)
    starts = {w.name: w.spec.start_epoch for w in mix}
    assert starts == {"memcached": 0, "pagerank": 25, "liblinear": 55}
    assert PAPER_START_SECONDS == {"memcached": 0, "pagerank": 50, "liblinear": 110}


def test_intensity_applied():
    mix = paper_colocation_mix(accesses_per_thread=1000)
    apt = {w.name: w.spec.accesses_per_thread for w in mix}
    assert apt["memcached"] == 1000
    assert apt["pagerank"] == int(1000 * INTENSITY["pagerank"])
    assert apt["liblinear"] == int(1000 * INTENSITY["liblinear"])


def test_be_more_intense_than_lc():
    assert INTENSITY["liblinear"] > INTENSITY["memcached"]
    assert INTENSITY["pagerank"] > INTENSITY["memcached"]


def test_dilemma_pair():
    pair = dilemma_pair()
    assert [w.name for w in pair] == ["memcached", "liblinear"]
    assert all(w.spec.start_epoch == 0 for w in pair)


def test_eight_threads_default():
    assert all(w.spec.n_threads == 8 for w in paper_colocation_mix())
