"""YCSB workload family."""

import numpy as np
import pytest

from repro.core.classify import ServiceClass
from repro.mm.address_space import Vma
from repro.workloads.base import WorkloadSpec
from repro.workloads.ycsb import MAX_SCAN_LEN, YCSB_MIXES, YcsbMix, YcsbWorkload


def make(mix="C", rss=1000, apt=5000, threads=2, seed=0):
    spec = WorkloadSpec(name="kv", service=ServiceClass.LC, rss_pages=rss,
                        n_threads=threads, accesses_per_thread=apt)
    wl = YcsbWorkload(spec, seed=seed, mix=mix)
    wl.bind(1, Vma(start_vpn=1000, n_pages=rss))
    return wl


def gather(wl, epoch=0):
    batches = wl.generate(epoch)
    return (
        np.concatenate([b.vpns for b in batches]),
        np.concatenate([b.is_write for b in batches]),
    )


def test_all_mixes_defined():
    assert set(YCSB_MIXES) == set("ABCDEF")
    for mix in YCSB_MIXES.values():
        total = mix.read + mix.update + mix.insert + mix.scan + mix.rmw
        assert total == pytest.approx(1.0)


def test_workload_c_pure_reads():
    vpns, writes = gather(make("C"))
    assert not writes.any()


def test_workload_a_half_updates():
    vpns, writes = gather(make("A", apt=20_000))
    assert writes.mean() == pytest.approx(0.5, abs=0.03)


def test_workload_b_light_updates():
    vpns, writes = gather(make("B", apt=20_000))
    assert writes.mean() == pytest.approx(0.05, abs=0.02)


def test_workload_f_rmw_pairs():
    wl = make("F", apt=4000)
    batches = wl.generate(0)
    b = batches[0]
    # RMW emits read+write to the same page back to back.
    w_idx = np.where(b.is_write)[0]
    assert w_idx.size > 0
    assert (b.vpns[w_idx] == b.vpns[w_idx - 1]).all()


def test_workload_e_scans_are_sequential_reads():
    vpns, writes = gather(make("E", apt=2000))
    # Mostly reads; runs of +1 strides dominate.
    assert writes.mean() < 0.1
    diffs = np.diff(vpns)
    assert (diffs == 1).mean() > 0.5


def test_workload_d_skews_to_latest_keys():
    vpns, _ = gather(make("D", rss=1000, apt=20_000))
    offsets = vpns - 1000
    # "latest" concentrates traffic near the top of the key space.
    assert np.median(offsets) > 900


def test_accesses_within_vma():
    for mix in "ABCDEF":
        wl = make(mix, rss=500, apt=2000)
        vpns, _ = gather(wl)
        assert vpns.min() >= 1000
        assert vpns.max() < 1500


def test_write_fraction_estimates():
    assert make("C").write_fraction() == 0.0
    assert make("A").write_fraction() == pytest.approx(0.5)
    assert 0.0 < make("F").write_fraction() < 0.5


def test_mix_validation():
    with pytest.raises(ValueError):
        YcsbMix(read=0.5)
    with pytest.raises(ValueError):
        YcsbWorkload(mix="Z")


def test_deterministic():
    a_v, a_w = gather(make("A", seed=3))
    b_v, b_w = gather(make("A", seed=3))
    np.testing.assert_array_equal(a_v, b_v)
    np.testing.assert_array_equal(a_w, b_w)


def test_scan_length_bounded():
    assert MAX_SCAN_LEN == 16
