"""Machine assembly."""

from repro.machine.platform import FAST_TIER, SLOW_TIER, build_machine
from repro.sim.config import paper_machine_config
from repro.sim.units import GiB, PAGE_SIZE


def test_build_machine_paper_defaults():
    m = build_machine()
    assert m.cpu.n_cores == 32
    assert m.fast.total_frames == 32 * GiB // PAGE_SIZE
    assert m.slow.total_frames == 256 * GiB // PAGE_SIZE
    assert m.fast.tier_id == FAST_TIER
    assert m.slow.tier_id == SLOW_TIER


def test_custom_page_size_scales_frames():
    m = build_machine(paper_machine_config(), page_size=10 * 1000 * 1000)
    assert m.fast.total_frames == (32 * GiB) // (10 * 1000 * 1000)


def test_tier_lookup():
    m = build_machine()
    assert m.tier(0) is m.fast
    assert m.tier(1) is m.slow


def test_fast_tier_is_faster():
    m = build_machine()
    assert m.fast.load_latency_cycles < m.slow.load_latency_cycles


def test_cross_tier_copy_bounded_by_link():
    m = build_machine()
    c = m.cross_tier_copy_cycles(4096)
    assert c > 0
    assert m.link.bytes_transferred == 4096


def test_deterministic_seeding():
    a = build_machine(seed=5)
    b = build_machine(seed=5)
    # The per-core TLB victim streams must match between same-seed builds.
    for ca, cb in zip(a.cpu.cores, b.cpu.cores):
        for vpn in range(ca.tlb.entries + 10):
            ca.tlb.insert(vpn, vpn)
            cb.tlb.insert(vpn, vpn)
    assert sorted(a.cpu.core(0).tlb._map) == sorted(b.cpu.core(0).tlb._map)
