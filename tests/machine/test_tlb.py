"""Structural TLB behaviour."""

import numpy as np
import pytest

from repro.machine.tlb import Tlb


def make_tlb(entries: int = 4) -> Tlb:
    return Tlb(entries=entries, rng=np.random.default_rng(3))


def test_miss_then_hit():
    t = make_tlb()
    assert t.lookup(10) is None
    t.insert(10, 99)
    assert t.lookup(10) == 99
    assert t.stats.misses == 1
    assert t.stats.hits == 1


def test_capacity_eviction():
    t = make_tlb(entries=2)
    t.insert(1, 11)
    t.insert(2, 22)
    t.insert(3, 33)  # evicts one of the previous two
    assert len(t) == 2
    assert t.stats.evictions == 1
    assert t.contains(3)


def test_reinsert_same_vpn_updates_without_eviction():
    t = make_tlb(entries=2)
    t.insert(1, 11)
    t.insert(2, 22)
    t.insert(1, 77)  # remap, not a new entry
    assert len(t) == 2
    assert t.stats.evictions == 0
    assert t.lookup(1) == 77


def test_invalidate():
    t = make_tlb()
    t.insert(5, 50)
    assert t.invalidate(5) is True
    assert t.invalidate(5) is False  # already gone
    assert t.stats.invalidations == 1
    assert t.lookup(5) is None


def test_invalidate_many_counts_only_present():
    t = make_tlb(entries=8)
    for vpn in range(4):
        t.insert(vpn, vpn * 10)
    dropped = t.invalidate_many([0, 1, 99])
    assert dropped == 2
    assert t.stats.invalidations == 2


def test_flush():
    t = make_tlb(entries=8)
    for vpn in range(5):
        t.insert(vpn, vpn)
    assert t.flush() == 5
    assert len(t) == 0
    assert t.stats.flushes == 1


def test_hit_ratio():
    t = make_tlb()
    t.insert(1, 1)
    t.lookup(1)
    t.lookup(2)
    assert t.stats.hit_ratio == pytest.approx(0.5)


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        Tlb(entries=0)
