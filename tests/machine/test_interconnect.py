"""Cross-tier link model."""

import pytest

from repro.machine.interconnect import Interconnect


def test_transfer_cost_includes_latency_and_bandwidth():
    link = Interconnect(bandwidth_gbps=25.0, added_latency_ns=90.0)
    # 25 GB/s == 25 B/ns; 2500 bytes => 100 ns + 90 ns = 190 ns = 570 cycles
    assert link.transfer_cost_cycles(2500) == 570


def test_zero_bytes_costs_only_latency():
    link = Interconnect(added_latency_ns=90.0)
    assert link.transfer_cost_cycles(0) == 270


def test_concurrent_streams_share_bandwidth():
    link = Interconnect(bandwidth_gbps=10.0, added_latency_ns=0.0)
    solo = link.transfer_cost_cycles(10_000, concurrent_streams=1)
    shared = link.transfer_cost_cycles(10_000, concurrent_streams=4)
    assert shared == pytest.approx(4 * solo, rel=0.01)


def test_bytes_accounted():
    link = Interconnect()
    link.transfer_cost_cycles(100)
    link.transfer_cost_cycles(200)
    assert link.bytes_transferred == 300


def test_validation():
    with pytest.raises(ValueError):
        Interconnect(bandwidth_gbps=0.0)
    with pytest.raises(ValueError):
        Interconnect(added_latency_ns=-1.0)
    link = Interconnect()
    with pytest.raises(ValueError):
        link.transfer_cost_cycles(-1)
    with pytest.raises(ValueError):
        link.transfer_cost_cycles(1, concurrent_streams=0)
