"""Memory tier latency/bandwidth model."""

import pytest

from repro.machine.memtier import MemoryTier
from repro.sim.config import TierConfig
from repro.sim.units import GiB, PAGE_SIZE


def make_tier(capacity=GiB, latency=100.0, bw=10.0, tier_id=0) -> MemoryTier:
    return MemoryTier(TierConfig(name="t", capacity_bytes=capacity, load_latency_ns=latency, bandwidth_gbps=bw), tier_id=tier_id)


def test_frame_count():
    t = make_tier(capacity=GiB)
    assert t.total_frames == GiB // PAGE_SIZE


def test_unloaded_latency():
    t = make_tier(latency=100.0)
    assert t.access_latency_cycles(0.0) == pytest.approx(300.0)


def test_loaded_latency_monotone():
    t = make_tier()
    lats = [t.access_latency_cycles(u) for u in (0.0, 0.3, 0.6, 0.9)]
    assert lats == sorted(lats)
    assert lats[-1] > lats[0]


def test_loaded_latency_capped_at_4x():
    t = make_tier(latency=100.0)
    assert t.access_latency_cycles(0.999) <= 4.0 * t.load_latency_cycles


def test_copy_cost_scales_with_bytes():
    t = make_tier(bw=10.0)  # 10 bytes per ns
    # 4096 bytes / 10 B/ns = 409.6 ns = ~1229 cycles
    assert t.copy_cost_cycles(4096) == pytest.approx(1229, abs=2)
    assert t.copy_cost_cycles(8192) == pytest.approx(2 * t.copy_cost_cycles(4096), rel=0.01)


def test_copy_cost_negative_rejected():
    with pytest.raises(ValueError):
        make_tier().copy_cost_cycles(-1)


def test_access_recording():
    t = make_tier()
    t.record_access(False, count=3)
    t.record_access(True, count=2)
    assert t.stats.reads == 3
    assert t.stats.writes == 2


def test_sub_page_tier_rejected():
    with pytest.raises(ValueError):
        make_tier(capacity=100)
