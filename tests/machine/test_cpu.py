"""Core complex and IPI delivery."""

import numpy as np
import pytest

from repro.machine.cpu import CpuComplex


def make_cpu(n: int = 8) -> CpuComplex:
    return CpuComplex(n_cores=n, tlb_entries=64, rng=np.random.default_rng(1))


def test_cores_created():
    cpu = make_cpu(4)
    assert cpu.n_cores == 4
    assert [c.core_id for c in cpu.cores] == [0, 1, 2, 3]
    assert all(c.thread_id is None for c in cpu.cores)


def test_schedule_and_find_threads():
    cpu = make_cpu()
    cpu.schedule_thread(thread_id=7, core_id=2)
    cpu.schedule_thread(thread_id=8, core_id=5)
    running = cpu.cores_running({7, 8, 99})
    assert sorted(c.core_id for c in running) == [2, 5]


def test_park_core():
    cpu = make_cpu()
    cpu.schedule_thread(3, 1)
    cpu.core(1).schedule(None)
    assert cpu.cores_running({3}) == []


def test_ipi_cost_grows_with_targets():
    cpu = make_cpu()
    c1 = cpu.deliver_ipis([0])
    c4 = cpu.deliver_ipis([0, 1, 2, 3])
    assert c4 > c1
    assert cpu.ipi_stats.broadcasts == 2
    assert cpu.ipi_stats.unicast_targets == 5
    assert cpu.ipi_stats.cycles_spent == c1 + c4


def test_empty_ipi_free():
    cpu = make_cpu()
    assert cpu.deliver_ipis([]) == 0
    assert cpu.ipi_stats.broadcasts == 0


def test_zero_cores_rejected():
    with pytest.raises(ValueError):
        CpuComplex(n_cores=0, tlb_entries=64)


def test_per_core_tlbs_are_distinct():
    cpu = make_cpu(2)
    cpu.core(0).tlb.insert(1, 10)
    assert not cpu.core(1).tlb.contains(1)
