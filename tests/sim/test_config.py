"""Machine/simulation configuration defaults and validation."""

import pytest

from repro.sim.config import MachineConfig, SimulationConfig, TierConfig, paper_machine_config
from repro.sim.units import GiB


def test_paper_defaults_match_section_5_1():
    cfg = paper_machine_config()
    assert cfg.n_cores == 32
    assert cfg.fast.capacity_bytes == 32 * GiB
    assert cfg.slow.capacity_bytes == 256 * GiB
    assert cfg.fast.load_latency_ns == 70.0
    assert cfg.slow.load_latency_ns == 162.0
    assert cfg.fast.bandwidth_gbps == 205.0
    assert cfg.slow.bandwidth_gbps == 25.0


def test_with_cores():
    assert paper_machine_config().with_cores(8).n_cores == 8


def test_tier_latency_cycles():
    t = TierConfig(name="t", capacity_bytes=GiB, load_latency_ns=100.0, bandwidth_gbps=10.0)
    assert t.load_latency_cycles == 300


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(capacity_bytes=0, load_latency_ns=1.0, bandwidth_gbps=1.0),
        dict(capacity_bytes=1, load_latency_ns=0.0, bandwidth_gbps=1.0),
        dict(capacity_bytes=1, load_latency_ns=1.0, bandwidth_gbps=0.0),
    ],
)
def test_tier_validation(kwargs):
    with pytest.raises(ValueError):
        TierConfig(name="bad", **kwargs)


def test_machine_validation():
    with pytest.raises(ValueError):
        MachineConfig(n_cores=0)
    with pytest.raises(ValueError):
        MachineConfig(tlb_entries=0)


def test_sim_config_pages_for_scale():
    sim = SimulationConfig()
    # 1 page = 10 MB: the paper's 51 GB Memcached RSS → 5100 pages.
    assert sim.pages_for(51 * 10**9) == 5100
    assert sim.pages_for(1) == 1


def test_sim_config_validation():
    with pytest.raises(ValueError):
        SimulationConfig(page_unit_bytes=0)
    with pytest.raises(ValueError):
        SimulationConfig(epoch_seconds=0.0)
    with pytest.raises(ValueError):
        SimulationConfig(accesses_per_thread_epoch=0)
    with pytest.raises(ValueError):
        SimulationConfig(fthr_samples_per_epoch=0)
