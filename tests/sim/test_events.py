"""Discrete-event loop."""

import pytest

from repro.sim.events import EventLoop


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(30, fired.append, "c")
    loop.schedule(10, fired.append, "a")
    loop.schedule(20, fired.append, "b")
    loop.run_until(100)
    assert fired == ["a", "b", "c"]


def test_same_cycle_fires_in_schedule_order():
    loop = EventLoop()
    fired = []
    for tag in ("x", "y", "z"):
        loop.schedule(5, fired.append, tag)
    loop.run_until(5)
    assert fired == ["x", "y", "z"]


def test_run_until_leaves_future_events():
    loop = EventLoop()
    fired = []
    loop.schedule(10, fired.append, "early")
    loop.schedule(50, fired.append, "late")
    n = loop.run_until(20)
    assert n == 1 and fired == ["early"]
    assert len(loop) == 1
    loop.run_until(60)
    assert fired == ["early", "late"]


def test_now_advances_to_run_until_bound():
    loop = EventLoop()
    loop.run_until(42)
    assert loop.now == 42


def test_schedule_in_past_rejected():
    loop = EventLoop()
    loop.run_until(100)
    with pytest.raises(ValueError):
        loop.schedule(50, lambda: None)


def test_schedule_after_relative():
    loop = EventLoop()
    loop.run_until(10)
    fired = []
    loop.schedule_after(5, fired.append, 1)
    loop.run_until(15)
    assert fired == [1]


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        EventLoop().schedule_after(-1, lambda: None)


def test_cancel_skips_event():
    loop = EventLoop()
    fired = []
    ev = loop.schedule(10, fired.append, "dead")
    loop.schedule(10, fired.append, "alive")
    ev.cancel()
    loop.run_until(10)
    assert fired == ["alive"]


def test_events_can_schedule_events():
    loop = EventLoop()
    fired = []

    def chain(depth: int) -> None:
        fired.append(depth)
        if depth < 3:
            loop.schedule_after(10, chain, depth + 1)

    loop.schedule(0, chain, 0)
    loop.run_all()
    assert fired == [0, 1, 2, 3]


def test_run_all_limit_guards_runaway():
    loop = EventLoop()

    def forever() -> None:
        loop.schedule_after(1, forever)

    loop.schedule(0, forever)
    with pytest.raises(RuntimeError):
        loop.run_all(limit=100)
