"""Unit conversions."""

import pytest

from repro.sim import units


def test_page_constants():
    assert units.PAGE_SIZE == 4096
    assert units.HUGE_PAGE_SIZE == 2 * 1024 * 1024
    assert units.BASE_PAGES_PER_HUGE_PAGE == 512
    assert 1 << units.PAGE_SHIFT == units.PAGE_SIZE


def test_ns_cycles_roundtrip():
    assert units.ns_to_cycles(70.0) == 210  # 3 GHz
    assert units.cycles_to_ns(210) == pytest.approx(70.0)


def test_seconds_cycles():
    assert units.seconds_to_cycles(1.0) == 3_000_000_000
    assert units.cycles_to_seconds(3_000_000_000) == pytest.approx(1.0)


def test_seconds_roundtrip_fractional():
    for s in (0.001, 0.5, 2.25):
        assert units.cycles_to_seconds(units.seconds_to_cycles(s)) == pytest.approx(s)


def test_pages_for_bytes_ceiling():
    assert units.pages_for_bytes(0) == 0
    assert units.pages_for_bytes(1) == 1
    assert units.pages_for_bytes(4096) == 1
    assert units.pages_for_bytes(4097) == 2
    assert units.pages_for_bytes(10 * 4096) == 10


def test_pages_for_bytes_custom_page():
    assert units.pages_for_bytes(10**9, page_size=10**7) == 100


def test_pages_for_bytes_negative_rejected():
    with pytest.raises(ValueError):
        units.pages_for_bytes(-1)
