"""Cycle clock behaviour."""

import pytest

from repro.sim.clock import Clock


def test_starts_at_zero():
    assert Clock().cycles == 0
    assert Clock().seconds == 0.0


def test_advance_accumulates():
    c = Clock()
    c.advance(100)
    c.advance(50)
    assert c.cycles == 150


def test_advance_negative_rejected():
    with pytest.raises(ValueError):
        Clock().advance(-1)


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        Clock(start_cycles=-5)


def test_advance_seconds():
    c = Clock()
    c.advance_seconds(1.0)
    assert c.cycles == 3_000_000_000
    assert c.seconds == pytest.approx(1.0)


def test_advance_to_is_monotonic():
    c = Clock()
    c.advance_to(500)
    assert c.cycles == 500
    c.advance_to(100)  # in the past: no-op
    assert c.cycles == 500
