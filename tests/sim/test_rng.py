"""Deterministic RNG streams."""

import numpy as np

from repro.sim.rng import RngStreams


def test_same_name_same_stream_object():
    s = RngStreams(seed=1)
    assert s.get("a") is s.get("a")


def test_streams_reproducible_across_instances():
    a = RngStreams(seed=42).get("workload").random(8)
    b = RngStreams(seed=42).get("workload").random(8)
    np.testing.assert_array_equal(a, b)


def test_different_names_independent():
    s = RngStreams(seed=42)
    a = s.get("x").random(8)
    b = s.get("y").random(8)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = RngStreams(seed=1).get("x").random(8)
    b = RngStreams(seed=2).get("x").random(8)
    assert not np.allclose(a, b)


def test_reset_replays_sequences():
    s = RngStreams(seed=9)
    first = s.get("z").random(4)
    s.reset()
    again = s.get("z").random(4)
    np.testing.assert_array_equal(first, again)


def test_fork_deterministic_and_distinct():
    base = RngStreams(seed=5)
    f1 = base.fork("trial-1")
    f2 = base.fork("trial-2")
    assert f1.seed == RngStreams(seed=5).fork("trial-1").seed
    assert f1.seed != f2.seed
    assert not np.allclose(f1.get("w").random(4), f2.get("w").random(4))
