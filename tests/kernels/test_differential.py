"""Differential pinning: numba backend ≡ numpy reference, bit for bit.

The digests cover the full frozen golden matrix plus a 25-case fuzz
campaign (random scenarios + invariant oracle), hashed inside a
subprocess per backend since selection is import-time.  When numba is
absent the cross-backend test skips with a reason — the ``repro[fast]``
CI leg is where it must pass — while the python-leg sanity checks
always run.
"""

from __future__ import annotations

import importlib.util
import json
import os
import pathlib
import subprocess
import sys

import pytest

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")
WORKER = pathlib.Path(__file__).with_name("worker.py")
HAVE_NUMBA = importlib.util.find_spec("numba") is not None


def _digest(backend: str, goldens: int, fuzz_runs: int, timeout: float = 1800) -> dict:
    env = dict(os.environ, PYTHONPATH=SRC, REPRO_KERNELS=backend)
    env.pop("REPRO_LEGACY_EPOCH", None)
    proc = subprocess.run(
        [
            sys.executable, str(WORKER),
            "--goldens", str(goldens), "--fuzz-runs", str(fuzz_runs),
        ],
        env=env, capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, f"worker failed under {backend}:\n{proc.stderr[-3000:]}"
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_python_leg_digest_reproducible():
    """Two subprocesses of the reference backend agree (digest sanity)."""
    a = _digest("python", 2, 0)
    b = _digest("python", 2, 0)
    assert a["backend"] == b["backend"] == "python"
    assert a["n_goldens"] == 2
    assert a["digest"] == b["digest"]


@pytest.mark.skipif(
    not HAVE_NUMBA,
    reason="numba not installed — the repro[fast] CI leg runs the cross-backend differential",
)
def test_numba_vs_python_goldens_and_fuzz_bit_identical():
    py = _digest("python", -1, 25)
    nb = _digest("numba", -1, 25)
    assert py["backend"] == "python" and nb["backend"] == "numba"
    assert py["n_goldens"] == nb["n_goldens"] == 10
    assert py["digest"] == nb["digest"], (
        "numba kernels diverged from the numpy reference over the golden "
        "matrix + 25-case fuzz campaign"
    )
