"""Subprocess worker for the backend differential tests.

Runs under whatever backend ``REPRO_KERNELS`` selects and prints one
JSON line: a sha256 digest over the metrics of the frozen golden
configs plus (optionally) a fuzz-campaign report.  Two backends are
bit-identical iff their digests match — the parent test process never
has to ship arrays across the pipe.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--goldens", type=int, default=-1, help="-1 = all golden configs")
    ap.add_argument("--fuzz-runs", type=int, default=0)
    args = ap.parse_args()

    from repro import kernels
    from repro.cli import _run_one

    h = hashlib.sha256()
    golden_dir = pathlib.Path(__file__).resolve().parents[1] / "golden"
    files = sorted(golden_dir.glob("e2e_*.json"))
    if args.goldens >= 0:
        files = files[: args.goldens]
    for path in files:
        cfg = json.loads(path.read_text())["config"]
        res = _run_one(
            cfg["policy"], cfg["mix"], cfg["epochs"], cfg["accesses_per_thread"], cfg["seed"]
        )
        h.update(json.dumps(res.to_dict(), sort_keys=True).encode())

    if args.fuzz_runs > 0:
        from repro.fuzz.runner import campaign

        report = campaign(seed=1234, runs=args.fuzz_runs, shrink=False, parity_check=False)
        h.update(json.dumps(report, sort_keys=True).encode())

    print(
        json.dumps(
            {
                "backend": kernels.BACKEND,
                "n_goldens": len(files),
                "fuzz_runs": args.fuzz_runs,
                "digest": h.hexdigest(),
            }
        )
    )


if __name__ == "__main__":
    main()
