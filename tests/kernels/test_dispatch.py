"""Backend selection: the ``REPRO_KERNELS`` contract.

Selection happens at import time, so every case runs in a fresh
subprocess with the environment it is testing.
"""

from __future__ import annotations

import importlib.util
import os
import pathlib
import subprocess
import sys

import pytest

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")
HAVE_NUMBA = importlib.util.find_spec("numba") is not None
PROBE = "import repro.kernels as k; print(k.BACKEND)"


def _probe(value: str | None) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=SRC)
    if value is None:
        env.pop("REPRO_KERNELS", None)
    else:
        env["REPRO_KERNELS"] = value
    return subprocess.run(
        [sys.executable, "-c", PROBE], env=env, capture_output=True, text=True, timeout=300
    )


def test_python_forces_numpy_backend():
    proc = _probe("python")
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "python"


@pytest.mark.parametrize("value", [None, "auto"])
def test_auto_prefers_numba_when_importable(value):
    proc = _probe(value)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == ("numba" if HAVE_NUMBA else "python")


def test_bogus_mode_fails_loudly():
    proc = _probe("turbo")
    assert proc.returncode != 0
    assert "REPRO_KERNELS" in proc.stderr


def test_numba_forced():
    """``numba`` must either load numba or refuse to run — never fall back."""
    proc = _probe("numba")
    if HAVE_NUMBA:
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "numba"
    else:
        assert proc.returncode != 0
        assert "numba" in proc.stderr.lower()


def test_backend_info_reports_kernel_names():
    env = dict(os.environ, PYTHONPATH=SRC, REPRO_KERNELS="python")
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            "import json, repro.kernels as k; print(json.dumps(k.backend_info()))",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    import json

    info = json.loads(proc.stdout)
    assert info["backend"] == "python"
    assert info["requested"] == "python"
    assert info["kernels"] >= 18
