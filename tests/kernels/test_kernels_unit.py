"""Per-kernel unit tests against independent numpy oracles.

Parametrized over every importable backend: the numpy reference always,
the numba mirror when the ``repro[fast]`` extra is installed — so the
CI fast leg proves each compiled kernel against the same oracle, not
just against the reference backend end to end.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro.kernels import np_backend

_BACKENDS = {"python": np_backend}
if importlib.util.find_spec("numba") is not None:
    from repro.kernels import nb_backend

    _BACKENDS["numba"] = nb_backend


@pytest.fixture(params=sorted(_BACKENDS), ids=sorted(_BACKENDS))
def be(request):
    return _BACKENDS[request.param]


def _rng():
    return np.random.default_rng(42)


# -- zipf ------------------------------------------------------------------------


def test_zipf_invert_matches_searchsorted(be):
    from repro.workloads.zipf import ZipfSampler

    s = ZipfSampler(n=5000, s=0.99)
    u = _rng().random(20_000)
    got = be.zipf_invert(s._cdf, s._lut, s._LUT_BUCKETS, u)
    want = np.searchsorted(s._cdf, u, side="right")
    np.testing.assert_array_equal(got, want)


# -- page store ------------------------------------------------------------------


def test_page_record_rows_oracle(be):
    rng = _rng()
    n = 64
    reads = rng.integers(0, 50, n).astype(np.int64)
    writes = rng.integers(0, 50, n).astype(np.int64)
    er = np.zeros(n, dtype=np.int64)
    ew = np.zeros(n, dtype=np.int64)
    lac = np.zeros(n, dtype=np.int64)
    touched = np.zeros(n, dtype=bool)
    state = rng.integers(0, 4, n).astype(np.int8)
    dirty = np.zeros(n, dtype=bool)
    pfns = rng.permutation(n)[:20].astype(np.int64)
    nr = rng.integers(0, 9, 20).astype(np.int64)
    nw = rng.integers(0, 9, 20).astype(np.int64)

    exp = [a.copy() for a in (reads, writes, er, ew, lac, touched, dirty)]
    for i, p in enumerate(pfns):
        exp[0][p] += nr[i]
        exp[1][p] += nw[i]
        exp[2][p] += nr[i]
        exp[3][p] += nw[i]
        exp[4][p] = 99
        exp[5][p] = True
        if state[p] == 2 and nw[i] > 0:
            exp[6][p] = True

    be.page_record_rows(reads, writes, er, ew, lac, touched, state, dirty, pfns, nr, nw, 99)
    for got, want in zip((reads, writes, er, ew, lac, touched, dirty), exp):
        np.testing.assert_array_equal(got, want)


def test_page_reset_epoch_only_clears_touched_live_rows(be):
    n = 32
    rng = _rng()
    touched = rng.random(n) < 0.5
    state = rng.integers(0, 4, n).astype(np.int8)
    er = rng.integers(1, 9, n).astype(np.int64)
    ew = rng.integers(1, 9, n).astype(np.int64)
    t0, s0, er0, ew0 = touched.copy(), state.copy(), er.copy(), ew.copy()
    be.page_reset_epoch(touched, state, er, ew)
    for i in range(n):
        if t0[i] and s0[i] in (1, 2):
            assert er[i] == 0 and ew[i] == 0 and not touched[i]
        else:
            assert er[i] == er0[i] and ew[i] == ew0[i] and touched[i] == t0[i]
    np.testing.assert_array_equal(state, s0)


def test_pid_usage_and_ground_truth(be):
    rng = _rng()
    n = 200
    state = rng.integers(0, 4, n).astype(np.int8)
    pid_col = rng.integers(100, 104, n).astype(np.int64)
    er = rng.integers(0, 6, n).astype(np.int64)
    ew = rng.integers(0, 6, n).astype(np.int64)
    fast_frames, pid, cut = 80, 101, 4
    live = (state == 1) | (state == 2)
    mine = np.flatnonzero(live & (pid_col == pid))
    want_fast = int((mine < fast_frames).sum())
    assert be.pid_fast_usage(state, pid_col, pid, fast_frames) == want_fast
    hot = (er[mine] + ew[mine]) >= cut
    got = be.pid_ground_truth(state, pid_col, er, ew, pid, fast_frames, cut)
    want_hf = int((hot & (mine < fast_frames)).sum())
    assert tuple(int(x) for x in got) == (
        int(hot.sum()), want_hf, want_fast - want_hf, want_fast,
    )


# -- heat store ------------------------------------------------------------------


def test_heat_accumulate_reports_new_and_min(be):
    heat = np.zeros(10)
    live = np.zeros(10, dtype=bool)
    live[3] = True
    heat[3] = 2.0
    idx = np.array([3, 5, 7], dtype=np.int64)
    sums = np.array([1.0, 4.0, 0.5])
    new, mn = be.heat_accumulate(heat, live, idx, sums)
    np.testing.assert_array_equal(new, [False, True, True])
    assert live[[3, 5, 7]].all()
    np.testing.assert_allclose(heat[[3, 5, 7]], [3.0, 4.0, 0.5])
    assert mn == 0.5


def test_heat_add_scaled(be):
    heat = np.zeros(6)
    live = np.zeros(6, dtype=bool)
    idx = np.array([1, 4], dtype=np.int64)
    new, mn = be.heat_add_scaled(heat, live, idx, np.array([2.0, 8.0]), 0.25)
    np.testing.assert_allclose(heat[[1, 4]], [0.5, 2.0])
    assert new.all() and mn == 0.5


def test_heat_decay_compact_min(be):
    heat = np.array([0.0, 4.0, 0.1, 2.0])
    live = np.array([False, True, True, True])
    be.heat_decay(heat, 0.5)
    np.testing.assert_allclose(heat, [0.0, 2.0, 0.05, 1.0])
    dead = be.heat_compact(heat, live, 0.5)
    np.testing.assert_array_equal(dead, [2])
    assert heat[2] == 0.0 and not live[2]
    assert be.heat_min_live(heat, live) == 1.0
    assert be.heat_min_live(heat, np.zeros(4, dtype=bool)) == np.inf


def test_heat_gather_out_of_range_is_zero(be):
    heat = np.array([1.0, 2.0, 3.0])
    got = be.heat_gather(heat, 100, np.array([99, 100, 102, 103], dtype=np.int64))
    np.testing.assert_allclose(got, [0.0, 1.0, 3.0, 0.0])


def test_topk_live_keeps_kth_ties(be):
    heat = np.array([5.0, 1.0, 5.0, 3.0, 0.0, 2.0])
    live = np.array([True, True, True, True, False, True])
    vpns, heats = be.topk_live(heat, live, 10, 2)
    # everything tied with the 2nd-largest (5.0) survives, ascending vpn
    np.testing.assert_array_equal(vpns, [10, 12])
    np.testing.assert_allclose(heats, [5.0, 5.0])
    vpns_all, _ = be.topk_live(heat, live, 10, 99)
    np.testing.assert_array_equal(vpns_all, [10, 11, 12, 13, 15])


# -- profiler helpers ------------------------------------------------------------


def test_accumulate_unique_matches_dict_oracle(be):
    rng = _rng()
    vpns = rng.integers(0, 40, 500).astype(np.int64)
    w = rng.random(500)
    ww = rng.random(500) * (rng.random(500) < 0.3)
    uniq, sums, wsums = be.accumulate_unique(vpns, w, ww)
    ref_u, inv = np.unique(vpns, return_inverse=True)
    np.testing.assert_array_equal(uniq, ref_u)
    np.testing.assert_array_equal(sums, np.bincount(inv, weights=w))
    np.testing.assert_array_equal(wsums, np.bincount(inv, weights=ww))


def test_member_sorted_matches_isin(be):
    rng = _rng()
    ref = np.unique(rng.integers(0, 100, 30).astype(np.int64))
    vals = rng.integers(-10, 120, 200).astype(np.int64)
    np.testing.assert_array_equal(be.member_sorted(vals, ref), np.isin(vals, ref))
    assert not be.member_sorted(vals, np.empty(0, dtype=np.int64)).any()


def test_write_fractions(be):
    h = np.array([0.0, 2.0, 4.0, 1.0])
    w = np.array([1.0, 1.0, 8.0, 0.0])
    np.testing.assert_allclose(be.write_fractions(h, w), [0.0, 0.5, 1.0, 0.0])


# -- plan execution --------------------------------------------------------------


def _plan_fixture():
    rng = _rng()
    offsets = np.array([0, 40, 40, 100], dtype=np.int64)
    off_all = rng.integers(0, 30, 100).astype(np.int64)
    is_write = rng.random(100) < 0.4
    pfn_all = (off_all * 7 + 3).astype(np.int64)  # one pfn per offset
    return off_all, is_write, pfn_all, offsets


def test_plan_span_stats_oracle(be):
    off_all, is_write, pfn_all, offsets = _plan_fixture()
    span, fast_frames = 30, 100
    total, wc, pfn_span, fast_seg = be.plan_span_stats(
        off_all, is_write, pfn_all, fast_frames, offsets, span
    )
    np.testing.assert_array_equal(total, np.bincount(off_all, minlength=span))
    np.testing.assert_array_equal(wc, np.bincount(off_all[is_write], minlength=span))
    np.testing.assert_array_equal(pfn_span[off_all], pfn_all)
    want_fast = [
        int((pfn_all[s:e] < fast_frames).sum())
        for s, e in zip(offsets[:-1], offsets[1:])
    ]
    np.testing.assert_array_equal(fast_seg, want_fast)


def test_plan_segment_unique_oracle(be):
    off_all, _, _, offsets = _plan_fixture()
    scratch = np.zeros(30, dtype=bool)
    ucat, bounds = be.plan_segment_unique(off_all, offsets, scratch)
    assert not scratch.any(), "scratch must be returned all-False"
    assert bounds[0] == 0 and bounds.size == offsets.size
    for k in range(offsets.size - 1):
        seg = off_all[offsets[k] : offsets[k + 1]]
        np.testing.assert_array_equal(ucat[bounds[k] : bounds[k + 1]], np.unique(seg))


# -- candidate gathering ---------------------------------------------------------


def test_hot_slow_candidates_oracle(be):
    rng = _rng()
    base, n_pages, fast_frames, shared = 1000, 60, 25, 255
    pfn_tab = rng.permutation(50).astype(np.int64)
    pfn_tab = np.concatenate([pfn_tab, np.full(10, -1, dtype=np.int64)])
    owner_tab = rng.integers(0, 3, n_pages).astype(np.int16)
    owner_tab[rng.random(n_pages) < 0.3] = shared
    vpns = base + rng.permutation(n_pages)[:40].astype(np.int64)
    vpns[:4] = base - 5  # out-of-range vpns must be dropped
    heats = rng.random(40) * 20
    got_v, got_h, got_p = be.hot_slow_candidates(
        vpns, heats, 10.0, pfn_tab, owner_tab, base, fast_frames, shared
    )
    exp = []
    for v, h in zip(vpns.tolist(), heats.tolist()):
        if h < 10.0:
            continue
        i = v - base
        if not (0 <= i < n_pages) or pfn_tab[i] < 0 or pfn_tab[i] < fast_frames:
            continue
        exp.append((v, h, owner_tab[i] != shared))
    np.testing.assert_array_equal(got_v, [e[0] for e in exp])
    np.testing.assert_allclose(got_h, [e[1] for e in exp])
    np.testing.assert_array_equal(got_p, [e[2] for e in exp])


def test_empty_inputs(be):
    e_i = np.empty(0, dtype=np.int64)
    e_f = np.empty(0, dtype=np.float64)
    e_b = np.empty(0, dtype=bool)
    uniq, sums, wsums = be.accumulate_unique(e_i, e_f, e_f)
    assert uniq.size == sums.size == wsums.size == 0
    v, h, p = be.hot_slow_candidates(
        e_i, e_f, 1.0, np.zeros(4, dtype=np.int64), np.zeros(4, dtype=np.int16), 0, 2, 255
    )
    assert v.size == h.size == p.size == 0
    assert be.heat_gather(np.zeros(3), 0, e_i).size == 0
    assert be.member_sorted(e_i, np.array([1], dtype=np.int64)).size == 0
