"""Regenerate the frozen golden metrics snapshots.

Run from the repo root:

    PYTHONPATH=src python tests/golden/capture.py

The snapshots pin ``ExperimentResult.to_dict()`` bit-for-bit (JSON's
shortest-round-trip float repr is exact), so any refactor of the
frame/heat hot path can be checked against the pre-refactor behaviour.
"""

import json
import pathlib
import sys

from repro.cli import _run_one

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent
MATRIX = [
    ("vulcan", "paper"), ("vulcan", "dilemma"),
    ("memtis", "paper"), ("memtis", "dilemma"),
    ("tpp", "paper"), ("tpp", "dilemma"),
    ("nomad", "paper"), ("nomad", "dilemma"),
    ("uniform", "paper"),
    ("none", "paper"),
]
EPOCHS = 8
ACCESSES_PER_THREAD = 3000
SEED = 1


def main() -> int:
    for policy, mix in MATRIX:
        res = _run_one(policy, mix, EPOCHS, ACCESSES_PER_THREAD, SEED)
        path = GOLDEN_DIR / f"e2e_{policy}_{mix}.json"
        payload = {
            "config": {
                "policy": policy, "mix": mix, "epochs": EPOCHS,
                "accesses_per_thread": ACCESSES_PER_THREAD, "seed": SEED,
            },
            "result": res.to_dict(),
        }
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path.name}")
    capture_scenario()
    return 0


def capture_scenario() -> None:
    """Freeze the canned churn scenario: the full ScenarioResult —
    departures, restarts, fault records, leak checks, and the base
    metrics — pinned bit-for-bit under dynamic events."""
    from repro.scenario import get_scenario, run_scenario

    spec = get_scenario("churn")
    sres = run_scenario(spec)
    path = GOLDEN_DIR / "scenario_churn.json"
    payload = {
        "config": {"scenario": "churn", "spec_hash": spec.content_hash()},
        "scenario_result": sres.to_dict(),
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {path.name}")


if __name__ == "__main__":
    sys.exit(main())
