"""Job spec normalization / identity and the job state machine."""

from __future__ import annotations

import pytest

from repro.service.jobs import (
    LEGAL_TRANSITIONS,
    VALID_JOB_KINDS,
    IllegalTransition,
    Job,
    JobError,
    JobSpec,
    JobState,
)


class TestSpecNormalization:
    def test_defaults_fill_in(self):
        spec = JobSpec("run").normalized()
        assert spec.payload["policy"] == "vulcan"
        assert spec.payload["epochs"] > 0

    def test_explicit_defaults_hash_identically(self):
        """{"kind": "run"} and the fully spelled-out default are one job."""
        bare = JobSpec("run")
        spelled = JobSpec("run", {"policy": "vulcan", "mix": "paper",
                                  "epochs": 12, "accesses": 2000, "seed": 1})
        assert bare.job_id() == spelled.job_id()

    def test_different_seed_different_id(self):
        assert JobSpec("run", {"seed": 1}).job_id() != JobSpec("run", {"seed": 2}).job_id()

    def test_kind_disambiguates(self):
        assert JobSpec("run").job_id() != JobSpec("sweep").job_id()

    def test_unknown_kind_rejected(self):
        with pytest.raises(JobError, match="unknown job kind"):
            JobSpec("explode").normalized()

    def test_unknown_payload_key_rejected(self):
        with pytest.raises(JobError, match="unknown run payload keys"):
            JobSpec("run", {"epcohs": 5}).normalized()

    @pytest.mark.parametrize("payload", [
        {"policy": "nope"},
        {"mix": "nope"},
        {"epochs": 0},
        {"epochs": "ten"},
        {"seed": True},
    ])
    def test_bad_run_payloads(self, payload):
        with pytest.raises(JobError):
            JobSpec("run", payload).normalized()

    @pytest.mark.parametrize("payload", [
        {"fast_gb": []},
        {"fast_gb": [-1.0]},
        {"seeds": []},
        {"seeds": [1.5]},
        {"workers": 0},
        {"workers": 99},
        {"derived_seeds": 1},
    ])
    def test_bad_sweep_payloads(self, payload):
        with pytest.raises(JobError):
            JobSpec("sweep", payload).normalized()

    def test_sweep_fast_gb_coerced_to_float(self):
        """8 (int) and 8.0 (float) mean the same grid — same id."""
        assert (JobSpec("sweep", {"fast_gb": [8]}).job_id()
                == JobSpec("sweep", {"fast_gb": [8.0]}).job_id())

    def test_scenario_needs_name_xor_spec(self):
        with pytest.raises(JobError, match="exactly one of"):
            JobSpec("scenario").normalized()
        with pytest.raises(JobError, match="exactly one of"):
            JobSpec("scenario", {"name": "churn", "spec": {}}).normalized()

    def test_scenario_unknown_name(self):
        with pytest.raises(JobError, match="unknown scenario"):
            JobSpec("scenario", {"name": "not-a-scenario"}).normalized()

    def test_scenario_canned_name_ok(self):
        spec = JobSpec("scenario", {"name": "churn"}).normalized()
        assert spec.payload["name"] == "churn"

    def test_from_dict_round_trip(self):
        spec = JobSpec.from_dict({"kind": "run", "payload": {"seed": 3}})
        again = JobSpec.from_dict(spec.to_dict())
        assert again.job_id() == spec.job_id()

    def test_from_dict_rejects_extras(self):
        with pytest.raises(JobError, match="unknown job spec keys"):
            JobSpec.from_dict({"kind": "run", "priority": 9})

    def test_all_kinds_valid(self):
        named = {"scenario": {"name": "churn"}, "fleet": {"name": "balanced_trio"}}
        for kind in VALID_JOB_KINDS:
            JobSpec(kind, named.get(kind, {})).normalized()

    def test_fleet_needs_name_xor_spec(self):
        with pytest.raises(JobError, match="exactly one of"):
            JobSpec("fleet").normalized()
        with pytest.raises(JobError, match="exactly one of"):
            JobSpec("fleet", {"name": "balanced_trio", "spec": {}}).normalized()

    def test_fleet_unknown_name(self):
        with pytest.raises(JobError, match="unknown fleet scenario"):
            JobSpec("fleet", {"name": "not-a-fleet"}).normalized()

    def test_fleet_unknown_placer(self):
        with pytest.raises(JobError, match="unknown placer"):
            JobSpec("fleet", {"name": "balanced_trio", "placer": "bogus"}).normalized()

    def test_fleet_invalid_inline_spec(self):
        with pytest.raises(JobError, match="invalid fleet spec"):
            JobSpec("fleet", {"spec": {"name": "x"}}).normalized()

    def test_fleet_workers_bounds(self):
        with pytest.raises(JobError, match="workers"):
            JobSpec("fleet", {"name": "balanced_trio", "workers": 0}).normalized()
        with pytest.raises(JobError, match="workers"):
            JobSpec("fleet", {"name": "balanced_trio", "workers": 99}).normalized()

    def test_fleet_canned_name_hashes_stably(self):
        a = JobSpec("fleet", {"name": "balanced_trio"})
        b = JobSpec("fleet", {"name": "balanced_trio", "workers": 1})
        assert a.job_id() == b.job_id()


class TestStateMachine:
    def _job(self, state: JobState) -> Job:
        job = Job(job_id="j", spec=JobSpec("run").normalized(), state=state)
        return job

    def test_every_legal_transition_applies(self):
        for frm, tos in LEGAL_TRANSITIONS.items():
            for to in tos:
                job = self._job(frm)
                job.transition(to)
                assert job.state is to

    def test_every_illegal_transition_raises(self):
        for frm in JobState:
            for to in set(JobState) - set(LEGAL_TRANSITIONS[frm]):
                job = self._job(frm)
                with pytest.raises(IllegalTransition):
                    job.transition(to)
                assert job.state is frm, "failed transition must not mutate"

    def test_done_is_frozen(self):
        assert LEGAL_TRANSITIONS[JobState.DONE] == ()

    def test_running_sets_timestamps_and_attempts(self):
        job = self._job(JobState.PENDING)
        job.transition(JobState.RUNNING, at=10.0)
        assert job.started_at == 10.0 and job.attempts == 1
        job.transition(JobState.DONE, at=12.0)
        assert job.finished_at == 12.0

    def test_requeue_resets_to_clean_slate(self):
        job = self._job(JobState.PENDING)
        job.transition(JobState.RUNNING)
        job.error = {"kind": "crash"}
        job.cancel_requested = True
        job.transition(JobState.PENDING)
        assert job.started_at is None and job.finished_at is None
        assert job.error is None and not job.cancel_requested
        job.transition(JobState.RUNNING)
        assert job.attempts == 2

    def test_terminal_property(self):
        assert JobState.DONE.terminal and JobState.FAILED.terminal
        assert JobState.CANCELLED.terminal
        assert not JobState.PENDING.terminal and not JobState.RUNNING.terminal
