"""HTTP API contract tests against a live server on an ephemeral port."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceClient, ServiceError, TieringService

#: small enough that a claimed job finishes in well under a second
QUICK = {"epochs": 2, "accesses": 100, "seed": 1}


@pytest.fixture
def service(tmp_path):
    with TieringService(tmp_path / "svc", workers=1) as svc:
        yield svc


@pytest.fixture
def client(service):
    return ServiceClient(service.url)


def raw_request(service, method, path, body=None):
    """Bypass ServiceClient to assert raw status codes."""
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        f"{service.url}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestRoutes:
    def test_healthz(self, client):
        out = client.healthz()
        assert out["ok"] is True and out["jobs"]["total"] == 0

    def test_submit_status_result(self, service, client):
        status, sub = raw_request(service, "POST", "/jobs",
                                  {"kind": "run", "payload": QUICK})
        assert status == 202 and sub["deduped"] is False
        jid = sub["job"]["job_id"]
        final = client.wait(jid, timeout=60)
        assert final["state"] == "done"
        result = client.result(jid)
        assert result["kind"] == "run" and "cfi" in result

    def test_duplicate_submit_returns_200(self, service, client):
        client.submit("run", QUICK)
        status, sub = raw_request(service, "POST", "/jobs",
                                  {"kind": "run", "payload": QUICK})
        assert status == 200 and sub["deduped"] is True

    def test_list_and_state_filter(self, client):
        jid = client.submit("run", QUICK)["job"]["job_id"]
        client.wait(jid, timeout=60)
        assert [j["job_id"] for j in client.jobs(state="done")] == [jid]
        assert client.jobs(state="failed") == []

    def test_result_before_done_is_409(self, service, client):
        # a spec the worker hasn't picked up yet (or is still running)
        jid = client.submit("run", {**QUICK, "epochs": 8, "accesses": 2000})["job"]["job_id"]
        status, body = raw_request(service, "GET", f"/jobs/{jid}/result")
        if status == 200:  # tiny race: job may already be done on slow CI
            pytest.skip("job finished before the 409 window")
        assert status == 409 and body["error"] == "not_done"
        assert body["job"]["job_id"] == jid

    def test_cancel_pending_then_conflict(self, service, client):
        # a second job queued behind a running one stays PENDING long
        # enough to cancel deterministically with workers=1
        client.submit("run", {**QUICK, "epochs": 8, "accesses": 2000})
        jid = client.submit("run", {**QUICK, "seed": 99})["job"]["job_id"]
        job = client.cancel(jid)
        assert job["state"] == "cancelled"
        status, body = raw_request(service, "POST", f"/jobs/{jid}/cancel")
        assert status == 409 and body["error"] == "illegal_transition"

    def test_trace_is_jsonl(self, client):
        jid = client.submit("run", QUICK)["job"]["job_id"]
        client.wait(jid, timeout=60)
        recs = client.trace(jid)
        assert recs[0]["event"] == "submit"
        assert [r["to"] for r in recs if r["event"] == "state"] == ["running", "done"]

    def test_metrics_snapshot(self, client):
        jid = client.submit("run", QUICK)["job"]["job_id"]
        client.wait(jid, timeout=60)
        m = client.metrics()
        assert m["jobs"]["done"] == 1
        assert m["result_cache"]["misses"] >= 1
        assert any(c["name"] == "service_jobs_submitted"
                   for c in m["registry"]["counters"])


class TestErrorContract:
    def test_unknown_job_404(self, service):
        status, body = raw_request(service, "GET", "/jobs/deadbeef00000000")
        assert status == 404 and body["error"] == "not_found"

    def test_unknown_route_404(self, service):
        status, body = raw_request(service, "GET", "/nope")
        assert status == 404

    def test_wrong_method_405(self, service):
        status, body = raw_request(service, "POST", "/healthz", {})
        assert status == 405 and body["error"] == "method_not_allowed"

    def test_invalid_spec_400(self, service):
        status, body = raw_request(service, "POST", "/jobs",
                                   {"kind": "run", "payload": {"bogus": 1}})
        assert status == 400 and body["error"] == "invalid_job"

    def test_malformed_json_400(self, service):
        req = urllib.request.Request(
            f"{service.url}/jobs", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=10):
                raise AssertionError("expected 400")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
            assert json.loads(exc.read())["error"] == "bad_json"

    def test_bad_state_filter_400(self, service):
        status, body = raw_request(service, "GET", "/jobs?state=exploded")
        assert status == 400 and body["error"] == "bad_state"

    def test_client_raises_service_error(self, client):
        with pytest.raises(ServiceError) as exc:
            client.job("deadbeef00000000")
        assert exc.value.status == 404
