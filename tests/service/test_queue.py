"""Journaled queue: dedup, lifecycle, and crash-replay semantics."""

from __future__ import annotations

import json

import pytest

from repro.service.jobs import IllegalTransition, JobSpec, JobState
from repro.service.queue import JobQueue


@pytest.fixture
def queue(tmp_path):
    q = JobQueue(tmp_path / "journal.jsonl")
    yield q
    q.close()


def spec(seed: int = 1) -> JobSpec:
    return JobSpec("run", {"epochs": 2, "accesses": 100, "seed": seed})


class TestLifecycle:
    def test_submit_claim_finish(self, queue):
        job, deduped = queue.submit(spec())
        assert not deduped and job.state is JobState.PENDING
        claimed = queue.claim_next(timeout=1)
        assert claimed.job_id == job.job_id and claimed.state is JobState.RUNNING
        queue.finish(job.job_id, result_key="abc", cached=False)
        assert queue.get(job.job_id).state is JobState.DONE
        assert queue.get(job.job_id).result_key == "abc"

    def test_fifo_order(self, queue):
        ids = [queue.submit(spec(s))[0].job_id for s in (1, 2, 3)]
        claimed = [queue.claim_next(timeout=1).job_id for _ in ids]
        assert claimed == ids

    def test_dedup_live_and_done(self, queue):
        job, _ = queue.submit(spec())
        for _ in range(2):  # pending, then done
            again, deduped = queue.submit(spec())
            assert deduped and again.job_id == job.job_id
            if queue.get(job.job_id).state is JobState.PENDING:
                queue.claim_next(timeout=1)
                queue.finish(job.job_id, result_key="k", cached=False)
        assert queue.counts()["total"] == 1

    def test_resubmit_after_failure_requeues(self, queue):
        job, _ = queue.submit(spec())
        queue.claim_next(timeout=1)
        queue.fail(job.job_id, {"kind": "exception", "message": "boom"})
        again, deduped = queue.submit(spec())
        assert not deduped and again.job_id == job.job_id
        assert again.state is JobState.PENDING and again.error is None
        assert queue.claim_next(timeout=1).attempts == 2

    def test_cancel_pending_is_terminal(self, queue):
        job, _ = queue.submit(spec())
        queue.cancel(job.job_id)
        assert queue.get(job.job_id).state is JobState.CANCELLED
        assert queue.claim_next(timeout=0.05) is None, "cancelled job must not be claimed"

    def test_cancel_running_sets_flag(self, queue):
        job, _ = queue.submit(spec())
        queue.claim_next(timeout=1)
        queue.cancel(job.job_id)
        assert queue.get(job.job_id).state is JobState.RUNNING
        assert queue.cancel_requested(job.job_id)

    def test_cancel_terminal_raises(self, queue):
        job, _ = queue.submit(spec())
        queue.claim_next(timeout=1)
        queue.finish(job.job_id, result_key="k", cached=False)
        with pytest.raises(IllegalTransition):
            queue.cancel(job.job_id)

    def test_list_filter_and_counts(self, queue):
        a, _ = queue.submit(spec(1))
        queue.submit(spec(2))
        queue.claim_next(timeout=1)
        queue.finish(a.job_id, result_key="k", cached=False)
        assert [j.job_id for j in queue.list("done")] == [a.job_id]
        counts = queue.counts()
        assert counts == {"pending": 1, "running": 0, "done": 1,
                          "failed": 0, "cancelled": 0, "total": 2}

    def test_journal_lines_filtered_by_job(self, queue):
        a, _ = queue.submit(spec(1))
        queue.submit(spec(2))
        recs = [json.loads(line) for line in queue.journal_lines(a.job_id)]
        assert recs and all(r["job_id"] == a.job_id for r in recs)


class TestCrashReplay:
    def test_replay_rebuilds_table(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        q1 = JobQueue(path)
        done, _ = q1.submit(spec(1))
        pending, _ = q1.submit(spec(2))
        q1.claim_next(timeout=1)
        q1.finish(done.job_id, result_key="rk", cached=False)
        q1.close()

        q2 = JobQueue(path)
        assert q2.get(done.job_id).state is JobState.DONE
        assert q2.get(done.job_id).result_key == "rk"
        assert q2.get(pending.job_id).state is JobState.PENDING
        assert q2.claim_next(timeout=1).job_id == pending.job_id
        q2.close()

    def test_running_jobs_requeued_after_crash(self, tmp_path):
        """Kill -9 while a job runs: replay re-queues it, losing nothing."""
        path = tmp_path / "journal.jsonl"
        q1 = JobQueue(path)
        inflight, _ = q1.submit(spec(1))
        waiting, _ = q1.submit(spec(2))
        q1.claim_next(timeout=1)
        # no close(): simulate the process dying with the job RUNNING
        del q1

        q2 = JobQueue(path)
        assert q2.recovered == [inflight.job_id]
        job = q2.get(inflight.job_id)
        assert job.state is JobState.PENDING
        # recovered work runs before the backlog (it was claimed first)
        claimed = [q2.claim_next(timeout=1).job_id, q2.claim_next(timeout=1).job_id]
        assert set(claimed) == {inflight.job_id, waiting.job_id}
        assert q2.counts()["total"] == 2, "replay must not duplicate jobs"
        q2.close()

    def test_truncated_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        q1 = JobQueue(path)
        job, _ = q1.submit(spec(1))
        q1.close()
        with path.open("a") as fh:
            fh.write('{"event": "state", "t": 1.0, "job_id": "')  # cut mid-write

        q2 = JobQueue(path)
        assert q2.get(job.job_id).state is JobState.PENDING
        assert q2.counts()["total"] == 1
        q2.close()

    def test_cancel_requested_survives_replay(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        q1 = JobQueue(path)
        job, _ = q1.submit(spec(1))
        q1.claim_next(timeout=1)
        q1.cancel(job.job_id)
        del q1

        # the flag replays, then RUNNING->PENDING recovery clears it with
        # the rest of the slate — a fresh attempt, not a half-cancelled one
        q2 = JobQueue(path)
        assert q2.get(job.job_id).state is JobState.PENDING
        assert not q2.cancel_requested(job.job_id)
        q2.close()

    def test_empty_journal_file(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.touch()
        q = JobQueue(path)
        assert q.counts()["total"] == 0
        q.close()
