"""End-to-end service contracts: dedup, determinism, restart recovery.

These are the acceptance criteria of the control plane in miniature:
identical submissions share one computation and return byte-identical
results; a service job's metrics are bit-identical to the same spec
run through the CLI recipes; and a stop/restart cycle loses and
duplicates nothing thanks to the journal.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.harness.recipes import run_summary_json, standard_run
from repro.service import ServiceClient, TieringService

QUICK = {"policy": "vulcan", "mix": "paper", "epochs": 2, "accesses": 100, "seed": 5}


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


class TestDedup:
    def test_identical_submissions_compute_once(self, tmp_path):
        with TieringService(tmp_path / "svc", workers=2) as svc:
            client = ServiceClient(svc.url)
            first = client.submit("run", QUICK)
            second = client.submit("run", QUICK)
            jid = first["job"]["job_id"]
            assert second["job"]["job_id"] == jid
            assert not first["deduped"] and second["deduped"]
            final = client.wait(jid, timeout=60)
            assert final["state"] == "done"
            assert final["attempts"] == 1, "dedup must not re-run the work"
            assert canonical(client.result(jid)) == canonical(client.result(jid))

    def test_resubmit_after_restart_hits_result_cache(self, tmp_path):
        data = tmp_path / "svc"
        with TieringService(data, workers=1) as svc:
            r1 = ServiceClient(svc.url).run_to_completion("run", QUICK, timeout=60)
        # fresh process state, same data dir: the journal already knows the
        # job and the result cache already holds its payload
        with TieringService(data, workers=1) as svc:
            client = ServiceClient(svc.url)
            sub = client.submit("run", QUICK)
            assert sub["deduped"] and sub["job"]["state"] == "done"
            assert canonical(client.result(sub["job"]["job_id"])) == canonical(r1)

    def test_cache_disabled_still_correct(self, tmp_path):
        with TieringService(tmp_path / "svc", workers=1, use_cache=False) as svc:
            r = ServiceClient(svc.url).run_to_completion("run", QUICK, timeout=60)
            assert r["kind"] == "run"


class TestDeterminismContract:
    def test_service_run_matches_cli_recipe(self, tmp_path):
        """The exact payload ``repro run --json`` prints, bit for bit."""
        with TieringService(tmp_path / "svc", workers=1) as svc:
            got = ServiceClient(svc.url).run_to_completion("run", QUICK, timeout=60)
        res = standard_run(QUICK["policy"], QUICK["mix"], QUICK["epochs"],
                           QUICK["accesses"], QUICK["seed"])
        want = run_summary_json(res, mix=QUICK["mix"], seed=QUICK["seed"])
        service_view = {k: v for k, v in got.items() if k not in ("kind", "result")}
        assert canonical(service_view) == canonical(want)

    def test_result_round_trips_experiment(self, tmp_path):
        from repro.harness.experiment import ExperimentResult

        with TieringService(tmp_path / "svc", workers=1) as svc:
            got = ServiceClient(svc.url).run_to_completion("run", QUICK, timeout=60)
        res = ExperimentResult.from_dict(got["result"])
        assert set(res.workloads) and res.policy_name == QUICK["policy"]

    def test_service_fleet_matches_cli_recipe(self, tmp_path):
        """``repro fleet run --json`` and a service fleet job, bit for bit."""
        from repro.harness.recipes import fleet_run, fleet_summary_json

        fleet_payload = {
            "spec": {
                "name": "svc-fleet",
                "n_rounds": 2,
                "epochs_per_round": 2,
                "seed": 5,
                "nodes": [{"node_id": "n0", "fast_gb": 4.0},
                          {"node_id": "n1", "fast_gb": 4.0}],
                "workloads": [
                    {"key": "a", "kind": "memcached", "service": "LC",
                     "rss_pages": 120, "n_threads": 1, "accesses_per_thread": 400},
                    {"key": "b", "kind": "microbench", "service": "BE",
                     "rss_pages": 90, "n_threads": 1, "accesses_per_thread": 400},
                ],
            },
        }
        with TieringService(tmp_path / "svc", workers=1) as svc:
            got = ServiceClient(svc.url).run_to_completion(
                "fleet", fleet_payload, timeout=120)
        want = fleet_summary_json(fleet_run(spec=fleet_payload["spec"], workers=1))
        service_view = {k: v for k, v in got.items() if k != "kind"}
        assert canonical(service_view) == canonical(want)


class TestRestartRecovery:
    def test_clean_stop_requeues_inflight_and_restart_finishes(self, tmp_path):
        """Stop mid-flight, restart on the same journal: every job lands
        DONE exactly once — zero lost, zero duplicated."""
        data = tmp_path / "svc"
        specs = [{**QUICK, "seed": s, "epochs": 4, "accesses": 1500} for s in range(1, 5)]
        svc = TieringService(data, workers=1)
        svc.start()
        client = ServiceClient(svc.url)
        ids = [client.submit("run", s)["job"]["job_id"] for s in specs]
        assert len(set(ids)) == len(specs)
        svc.stop()  # likely mid-job: in-flight work is re-queued, not lost

        with TieringService(data, workers=2) as svc2:
            client = ServiceClient(svc2.url)
            states = {jid: client.wait(jid, timeout=120)["state"] for jid in ids}
            assert set(states.values()) == {"done"}
            assert client.healthz()["jobs"]["total"] == len(specs)
            for jid in ids:
                assert client.result(jid)["kind"] == "run"

    def test_recovered_attempt_counts_both_tries(self, tmp_path):
        data = tmp_path / "svc"
        svc = TieringService(data, workers=1)
        svc.start()
        client = ServiceClient(svc.url)
        jid = client.submit("run", {**QUICK, "epochs": 6, "accesses": 2000})["job"]["job_id"]
        # wait until the worker actually claims it so the stop interrupts it
        for _ in range(1000):
            if client.job(jid)["state"] != "pending":
                break
            time.sleep(0.05)
        svc.stop()
        # a clean stop journals the RUNNING -> PENDING requeue itself, so
        # replay sees a pending job (recovered-list is for hard crashes)
        with TieringService(data, workers=1) as svc2:
            client = ServiceClient(svc2.url)
            if client.job(jid)["state"] == "done":
                pytest.skip("job finished before stop could interrupt it")
            final = client.wait(jid, timeout=120)
            assert final["state"] == "done" and final["attempts"] >= 2
