"""Cross-module integration and failure-injection tests."""

import numpy as np
import pytest

from repro.core.classify import ServiceClass
from repro.harness import ColocationExperiment
from repro.mm import pte as pte_mod
from repro.sim.config import MachineConfig, SimulationConfig, TierConfig
from repro.workloads.base import WorkloadSpec
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.ycsb import YcsbWorkload

UNIT = 10**6


def machine(fast=128, slow=1024, cores=16):
    return MachineConfig(
        n_cores=cores,
        fast=TierConfig(name="fast", capacity_bytes=fast * UNIT, load_latency_ns=70.0, bandwidth_gbps=205.0),
        slow=TierConfig(name="slow", capacity_bytes=slow * UNIT, load_latency_ns=162.0, bandwidth_gbps=25.0),
    )


def sim():
    return SimulationConfig(page_unit_bytes=UNIT, epoch_seconds=0.5)


def kv(name="kv", rss=200, mix="B", start=0, seed=0, threads=2):
    spec = WorkloadSpec(name=name, service=ServiceClass.LC, rss_pages=rss,
                        n_threads=threads, start_epoch=start, accesses_per_thread=2000)
    return YcsbWorkload(spec, seed=seed, mix=mix)


@pytest.mark.parametrize("policy", ["none", "uniform", "tpp", "memtis", "nomad", "vulcan"])
def test_every_policy_conserves_frames(policy):
    """After any policy churns for a while, every mapped PTE points at a
    live frame of the right tier and no frame is double-mapped."""
    exp = ColocationExperiment(
        policy, [kv("a"), kv("b", seed=1)], machine_config=machine(),
        sim=sim(), seed=2, cores_per_workload=4,
    )
    exp.run(8)
    seen_pfns: set[int] = set()
    for space in exp._spaces.values():
        for vpn, value in space.process.repl.process_table.iter_ptes():
            pfn = pte_mod.pte_pfn(value)
            assert pfn not in seen_pfns, f"{policy}: pfn {pfn} mapped twice"
            seen_pfns.add(pfn)
            page = exp.allocator.page(pfn)
            assert page.tier_id == exp.allocator.tier_of_pfn(pfn)
    # Allocator totals: used + free == capacity (shadows count as used).
    total = exp.allocator.tiers[0].total + exp.allocator.tiers[1].total
    free = exp.allocator.free_frames(0) + exp.allocator.free_frames(1)
    assert free + len(seen_pfns) <= total


@pytest.mark.parametrize("policy", ["memtis", "vulcan"])
def test_rss_equals_mapped_pages_forever(policy):
    exp = ColocationExperiment(
        policy, [kv("a", rss=300)], machine_config=machine(), sim=sim(),
        seed=1, cores_per_workload=4,
    )
    res = exp.run(6)
    ts = res.by_name("a")
    assert all(r == 300 for r in ts.rss_pages)


def test_fast_tier_oversubscription_survives():
    """Three workloads whose combined RSS dwarfs the fast tier: no
    crashes, allocator never over-commits, everyone keeps running."""
    wls = [kv(f"w{i}", rss=400, seed=i) for i in range(3)]
    exp = ColocationExperiment(
        "vulcan", wls, machine_config=machine(fast=64, slow=2048),
        sim=sim(), seed=3, cores_per_workload=4,
    )
    res = exp.run(10)
    used_fast = sum(ts.fast_pages[-1] for ts in res.workloads.values())
    assert used_fast <= 64
    for ts in res.workloads.values():
        assert ts.ops[-1] > 0


def test_slow_tier_exhaustion_is_loud():
    """RSS beyond both tiers must fail at admission, not corrupt state."""
    wl = kv("huge", rss=4000)
    exp = ColocationExperiment(
        "none", [wl], machine_config=machine(fast=64, slow=512),
        sim=sim(), seed=1, cores_per_workload=4,
    )
    from repro.mm.frame_alloc import OutOfFramesError

    with pytest.raises(OutOfFramesError):
        exp.run(1)


def test_write_heavy_kv_exercises_sync_path_under_vulcan():
    """YCSB-A (50% updates) must classify write-intensive and be migrated
    synchronously per Table 1."""
    wl = kv("a", mix="A", rss=300)
    exp = ColocationExperiment(
        "vulcan", [wl], machine_config=machine(fast=64), sim=sim(),
        seed=1, cores_per_workload=4,
    )
    exp.run(8)
    rt = next(iter(exp.policy.workloads.values()))
    # Hot pages are ~50% writes; the planner must have sent sync requests,
    # so transactional retries should be near zero.
    assert rt.engine.stats.retries <= rt.engine.stats.pages_moved * 0.05


def test_vulcan_advisor_integration():
    wl = MemcachedWorkload(
        WorkloadSpec(name="mc", service=ServiceClass.LC, rss_pages=200,
                     n_threads=2, accesses_per_thread=2000),
        seed=0,
    )
    exp = ColocationExperiment(
        "vulcan", [wl], machine_config=machine(fast=64), sim=sim(),
        seed=1, cores_per_workload=4,
    )
    exp.run(6)
    pid = next(iter(exp.policy.workloads))
    advice = exp.policy.replication_advice(pid)
    assert advice.pid == pid
    assert advice.benefit_cycles_per_epoch >= 0.0
    assert advice.cost_cycles_per_epoch >= 0.0
    assert isinstance(advice.enable, bool)


def test_deterministic_across_policies_and_seeds():
    """Same seed ⇒ identical trajectories; different seed ⇒ different."""
    def run(seed):
        exp = ColocationExperiment(
            "vulcan", [kv("a", seed=0)], machine_config=machine(),
            sim=sim(), seed=seed, cores_per_workload=4,
        )
        return exp.run(5).by_name("a").ops

    a, b, c = run(7), run(7), run(8)
    np.testing.assert_allclose(a, b)
    assert not np.allclose(a, c)
