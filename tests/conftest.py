"""Shared fixtures: small machines, allocators, processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.platform import Machine
from repro.mm.address_space import AddressSpace, Process
from repro.mm.frame_alloc import FrameAllocator
from repro.mm.lru import LruSubsystem
from repro.sim.config import MachineConfig, TierConfig
from repro.sim.units import PAGE_SIZE


def small_machine_config(n_cores: int = 8, fast_pages: int = 64, slow_pages: int = 512) -> MachineConfig:
    """A machine tiny enough for structural tests."""
    return MachineConfig(
        n_cores=n_cores,
        fast=TierConfig(name="fast", capacity_bytes=fast_pages * PAGE_SIZE, load_latency_ns=70.0, bandwidth_gbps=205.0),
        slow=TierConfig(name="slow", capacity_bytes=slow_pages * PAGE_SIZE, load_latency_ns=162.0, bandwidth_gbps=25.0),
    )


@pytest.fixture
def machine() -> Machine:
    return Machine(small_machine_config(), rng=np.random.default_rng(7))


@pytest.fixture
def allocator(machine: Machine) -> FrameAllocator:
    return FrameAllocator(
        fast_frames=machine.fast.total_frames,
        slow_frames=machine.slow.total_frames,
    )


@pytest.fixture
def lru(machine: Machine) -> LruSubsystem:
    return LruSubsystem(n_cpus=machine.cpu.n_cores)


def make_process(pid: int = 1, n_threads: int = 4, replication: bool = True) -> Process:
    proc = Process(pid=pid, name=f"proc{pid}", replication_enabled=replication)
    for tid in range(n_threads):
        proc.spawn_thread(tid)
    return proc


@pytest.fixture
def process() -> Process:
    return make_process()


@pytest.fixture
def space(process: Process, allocator: FrameAllocator) -> AddressSpace:
    return AddressSpace(process, allocator)


def populated_space(
    allocator: FrameAllocator,
    *,
    pid: int = 1,
    n_pages: int = 32,
    n_threads: int = 4,
    replication: bool = True,
) -> AddressSpace:
    """A process with one VMA fully faulted in (round-robin thread touch)."""
    proc = make_process(pid=pid, n_threads=n_threads, replication=replication)
    vma = proc.mmap(n_pages)
    space = AddressSpace(proc, allocator)
    for i, vpn in enumerate(range(vma.start_vpn, vma.end_vpn)):
        space.fault(vpn, tid=i % n_threads, prefer_tier=0)
    return space
