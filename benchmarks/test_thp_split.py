"""THP ablation — split-on-promotion vs whole-huge-page promotion.

Vulcan (following Memtis, §3.4-3.5) keeps 2 MiB THP mappings for TLB
reach but *splits* them into base pages before promotion, so only the
genuinely hot 4 KiB subpages consume fast memory.  This bench runs at
true 4 KiB granularity: a skewed workload over huge-mapped regions,
comparing fast-tier bytes needed to capture the hot set when promoting
whole huge pages vs split base pages, plus the TLB-reach retention.
"""

import numpy as np
import pytest

from figutil import save_figure
from repro.metrics.reporting import render_table
from repro.mm.thp import HugePageManager
from repro.sim.units import BASE_PAGES_PER_HUGE_PAGE as HP
from repro.workloads.zipf import ZipfSampler

N_REGIONS = 32  # 64 MiB of huge-mapped memory
ACCESSES = 200_000
HOT_COVERAGE = 0.90  # capture 90% of traffic


def _run_thp():
    rng = np.random.default_rng(7)
    mgr = HugePageManager()
    mgr.register_region(0, N_REGIONS * HP)
    # Zipf over all base pages: hot subpages scattered across regions.
    sampler = ZipfSampler(N_REGIONS * HP, 1.1, permute=True, rng=rng)
    vpns = sampler.sample(ACCESSES, rng)
    mgr.record_accesses(vpns)

    counts = np.bincount(vpns, minlength=N_REGIONS * HP)
    order = np.argsort(counts)[::-1]
    cum = np.cumsum(counts[order])
    n_hot_base = int(np.searchsorted(cum, HOT_COVERAGE * counts.sum()) + 1)

    # Whole-huge-page promotion: every region containing a hot base page
    # must be promoted entirely.
    hot_pages = order[:n_hot_base]
    hot_regions = np.unique(hot_pages // HP)
    whole_cost_pages = hot_regions.size * HP

    # Split-on-promotion: the skew detector splits; only hot base pages move.
    candidates = mgr.split_candidates(min_accesses=64, skew_threshold=2.0)
    split_cost_pages = n_hot_base

    return {
        "n_hot_base": n_hot_base,
        "whole_cost_pages": int(whole_cost_pages),
        "split_cost_pages": int(split_cost_pages),
        "split_candidates": len(candidates),
        "reach_before": mgr.tlb_reach_pages(64),
    }


@pytest.fixture(scope="module")
def thp():
    return _run_thp()


def test_thp_benchmark(benchmark):
    benchmark.pedantic(_run_thp, rounds=1, iterations=1)


def test_thp_table(thp):
    save_figure(
        "ablation_thp",
        render_table(
            ["metric", "value"],
            [
                ["hot base pages (90% of traffic)", thp["n_hot_base"]],
                ["fast pages needed, whole-THP promotion", thp["whole_cost_pages"]],
                ["fast pages needed, split-on-promotion", thp["split_cost_pages"]],
                ["waste factor avoided", thp["whole_cost_pages"] / max(thp["split_cost_pages"], 1)],
                ["skewed regions detected for splitting", thp["split_candidates"]],
            ],
            title="Ablation — THP split-on-promotion (Memtis/Vulcan rationale)",
            float_fmt="{:.3g}",
        ),
    )


def test_thp_split_avoids_memory_waste(thp):
    """Splitting must capture the hot set in far less fast memory."""
    assert thp["split_cost_pages"] * 3 < thp["whole_cost_pages"]


def test_thp_skew_detector_finds_hot_regions(thp):
    assert thp["split_candidates"] > 0


def test_thp_reach_advantage_is_why_thp_stays_on(thp):
    """Huge mappings keep TLB reach high before splitting — the reason
    Vulcan enables THP by default despite split-on-promotion."""
    assert thp["reach_before"] > 32 * HP  # far beyond 64 base-page reach
