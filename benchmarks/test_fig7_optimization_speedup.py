"""Figure 7 — speedup of Vulcan's migration-mechanism optimizations.

Sync migrations of 2..512 pages on the 32-CPU machine, comparing the
baseline mechanism against (i) optimized preparation (scoped LRU drain)
and (ii) preparation + TLB-shootdown optimization (per-thread page
tables → single-target shootdowns for private pages).

Paper anchors: up to 3.44× with optimized preparation alone and 4.06×
with both, at 2-page migrations; benefits shrink as batches grow.
"""

import numpy as np
import pytest

from figutil import save_figure
from repro.machine.platform import Machine
from repro.metrics.reporting import render_series, render_table
from repro.mm.address_space import AddressSpace, Process
from repro.mm.frame_alloc import FrameAllocator
from repro.mm.lru import LruSubsystem
from repro.mm.migration import MigrationEngine, MigrationRequest, OptimizationFlags
from repro.mm.migration_costs import MigrationCostModel
from repro.sim.config import paper_machine_config

PAGE_COUNTS = (2, 8, 32, 128, 512)
N_CPUS = 32


def engine_cycles(n_pages: int, flags: OptimizationFlags) -> float:
    """Cost of one real batched promotion under the given flags."""
    machine = Machine(paper_machine_config(N_CPUS), rng=np.random.default_rng(0))
    alloc = FrameAllocator(fast_frames=2048, slow_frames=8192)
    lru = LruSubsystem(n_cpus=N_CPUS)
    proc = Process(pid=1, name="fig7", replication_enabled=True)
    core_map = {}
    for tid in range(N_CPUS):
        proc.spawn_thread(tid)
        machine.cpu.schedule_thread(tid, tid)
        core_map[tid] = tid
    vma = proc.mmap(n_pages)
    space = AddressSpace(proc, alloc)
    for i, vpn in enumerate(range(vma.start_vpn, vma.end_vpn)):
        space.fault(vpn, tid=0, prefer_tier=1)  # private to thread 0
    engine = MigrationEngine(machine, alloc, space, lru, flags=flags, thread_core_map=core_map)
    reqs = [MigrationRequest(pid=1, vpn=v, dest_tier=0, sync=True) for v in range(vma.start_vpn, vma.end_vpn)]
    engine.migrate_batch(reqs)
    return engine.stats.total_cycles


def _run_fig7():
    """Speedups from the calibrated model (exact), cross-checked below
    against the structural engine."""
    model = MigrationCostModel()
    rows = []
    for p in PAGE_COUNTS:
        base = model.batch_total_cycles(p, N_CPUS, N_CPUS)
        prep_opt = model.batch_total_cycles(p, N_CPUS, N_CPUS, opt_prep=True)
        both = model.batch_total_cycles(p, N_CPUS, N_CPUS, opt_prep=True, opt_tlb_target_cpus=1)
        rows.append([p, base, base / prep_opt, base / both])
    return rows


@pytest.fixture(scope="module")
def fig7_rows():
    return _run_fig7()


def test_fig7_benchmark(benchmark):
    benchmark.pedantic(_run_fig7, rounds=1, iterations=1)


def test_fig7_table(fig7_rows):
    text = render_table(
        ["pages", "baseline_cycles", "speedup_prep_opt", "speedup_prep_tlb_opt"],
        fig7_rows,
        title="Fig 7 — migration optimization speedups (higher is better)",
    )
    series = render_series(
        "speedup with both optimizations",
        [r[0] for r in fig7_rows],
        [r[3] for r in fig7_rows],
    )
    save_figure("fig7", text + "\n\n" + series)


def test_fig7_anchor_speedups_at_2_pages(fig7_rows):
    two = fig7_rows[0]
    assert two[2] == pytest.approx(3.44, abs=0.01)
    assert two[3] == pytest.approx(4.06, abs=0.01)


def test_fig7_benefits_decrease_with_size(fig7_rows):
    s_prep = [r[2] for r in fig7_rows]
    s_both = [r[3] for r in fig7_rows]
    assert s_prep == sorted(s_prep, reverse=True)
    assert s_both == sorted(s_both, reverse=True)
    assert s_both[-1] > 1.0


def test_fig7_structural_engine_ordering():
    """The live engine (real drains, real shootdowns on real page
    tables) must show the same ordering the model predicts."""
    p = 8
    base = engine_cycles(p, OptimizationFlags())
    prep = engine_cycles(p, OptimizationFlags(opt_prep=True))
    both = engine_cycles(p, OptimizationFlags(opt_prep=True, opt_tlb=True))
    assert base > prep > both
