"""Figure 3 — TLB-operation vs page-copy contributions to migration time
across page counts and thread counts (preparation eliminated).

Paper anchors: with few pages, copying dominates; TLB coherence grows to
~65% of migration time at 512 pages / 32 threads.
"""

import pytest

from figutil import save_figure
from repro.metrics.reporting import render_table
from repro.mm.migration_costs import MigrationCostModel

PAGES = (2, 8, 32, 128, 512)
THREADS = (2, 8, 32)


def _run_fig3():
    model = MigrationCostModel()
    rows = []
    for t in THREADS:
        for p in PAGES:
            shares = model.batch_shares(p, t)
            tlb = model.batch_tlb_cycles(p, t)
            copy = model.batch_copy_cycles(p)
            rows.append([t, p, tlb, copy, shares["tlb"], shares["copy"]])
    return rows


@pytest.fixture(scope="module")
def fig3_rows():
    return _run_fig3()


def test_fig3_benchmark(benchmark):
    benchmark.pedantic(_run_fig3, rounds=1, iterations=1)


def test_fig3_table(fig3_rows):
    text = render_table(
        ["threads", "pages", "tlb_cycles", "copy_cycles", "tlb_share", "copy_share"],
        fig3_rows,
        title="Fig 3 — TLB vs copy contribution to migration time",
    )
    save_figure("fig3", text)


def test_fig3_anchor_65_percent(fig3_rows):
    peak = next(r for r in fig3_rows if r[0] == 32 and r[1] == 512)
    assert peak[4] == pytest.approx(0.65, abs=0.005)


def test_fig3_copy_dominates_small_batches(fig3_rows):
    for r in fig3_rows:
        if r[1] == 2 and r[0] <= 8:
            assert r[5] > r[4], f"copy should dominate at P=2, T={r[0]}"


def test_fig3_tlb_share_monotone_in_pages(fig3_rows):
    for t in THREADS:
        shares = [r[4] for r in fig3_rows if r[0] == t]
        assert shares == sorted(shares)


def test_fig3_tlb_share_monotone_in_threads(fig3_rows):
    for p in PAGES:
        shares = [r[4] for r in fig3_rows if r[1] == p]
        assert shares == sorted(shares)
