"""Shared helpers for the per-figure benchmark harness.

Every ``test_fig*.py`` regenerates one figure/table of the paper:
it runs the experiment, prints the same rows/series the paper plots,
writes them under ``benchmarks/out/``, and asserts the *shape* anchors
(who wins, direction, rough factor) — not absolute cycle counts.

Scale: set ``REPRO_BENCH_SCALE=full`` for paper-length runs; the default
``quick`` scale keeps the whole suite in a few minutes while preserving
every qualitative result.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.harness import ColocationExperiment, ExperimentResult
from repro.metrics.fairness import cfi
from repro.sim.config import SimulationConfig

OUT_DIR = Path(__file__).parent / "out"

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick") == "full"

#: accesses per thread per epoch fed to the co-location experiments
APT = 5000 if not FULL_SCALE else 20_000
#: trials for mean/CI reporting (paper: 10)
TRIALS = 2 if not FULL_SCALE else 10
#: epochs for the three-app timeline (paper timeline ≈ 160 s; 2 s epochs)
TIMELINE_EPOCHS = 80 if not FULL_SCALE else 160
#: epochs for the two-app dilemma runs
DILEMMA_EPOCHS = 25 if not FULL_SCALE else 60

COLOC_SIM = SimulationConfig(epoch_seconds=2.0)
PAIR_SIM = SimulationConfig(epoch_seconds=1.0)

#: steady-state window (epochs from the end) used for summary stats
STEADY = 15


def save_figure(name: str, text: str) -> None:
    """Print the figure data and persist it under benchmarks/out/."""
    print("\n" + text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


def run_colocation(policy: str, workloads, *, sim=None, seed=1, epochs=TIMELINE_EPOCHS) -> ExperimentResult:
    exp = ColocationExperiment(policy, workloads, sim=sim or COLOC_SIM, seed=seed)
    return exp.run(epochs)


def steady_mean(series, window: int = STEADY) -> float:
    vals = list(series)[-window:]
    return float(np.mean(vals)) if vals else 0.0


def steady_cfi(result: ExperimentResult, window: int = STEADY) -> float:
    """CFI over the common steady-state window (all workloads active).

    The paper integrates Eq. 4 over the run; with staggered starts the
    cumulative form is dominated by the solo warm-up phase, so we report
    the steady co-located window — documented in EXPERIMENTS.md.
    """
    alloc = {pid: np.asarray(ts.fast_pages[-window:], float) for pid, ts in result.workloads.items()}
    fthr = {pid: np.asarray(ts.fthr_true[-window:], float) for pid, ts in result.workloads.items()}
    return cfi(alloc, fthr)
