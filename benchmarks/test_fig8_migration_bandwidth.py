"""Figure 8 — migration performance of TPP / Memtis / Nomad / Vulcan on
the Nomad-style WSS/RSS microbenchmark.

Three working-set scenarios (small/medium/large relative to the fast
tier), Zipfian accesses, reporting read and write bandwidth during the
*migration-in-progress* phase (first epochs, placement converging) and
the *migration-stable* phase (last epochs).

Paper anchor: Vulcan sustains the highest bandwidth, with the gap most
pronounced once migration stabilizes.
"""

import numpy as np
import pytest

from figutil import APT, COLOC_SIM, save_figure
from repro.harness import ColocationExperiment
from repro.metrics.reporting import render_table
from repro.workloads.microbench import scenario

POLICIES = ("tpp", "memtis", "nomad", "vulcan")
SCENARIOS = ("small", "medium", "large")
EPOCHS = 24
PROGRESS_WINDOW = slice(2, 8)  # migration in progress
STABLE_WINDOW = slice(-6, None)  # migration stable
READ_RATIO = 0.8
BYTES_PER_ACCESS = 64


def bandwidth_gbps(ops_per_epoch: float, epoch_seconds: float) -> float:
    return ops_per_epoch * BYTES_PER_ACCESS / (epoch_seconds * 1e9)


def _run_fig8():
    fast_pages = None
    rows = []
    for scen in SCENARIOS:
        for policy in POLICIES:
            exp = ColocationExperiment(policy, [], sim=COLOC_SIM, seed=1)
            if fast_pages is None:
                fast_pages = exp.machine.fast.total_frames
            wl = scenario(scen, fast_pages, seed=0, read_ratio=READ_RATIO, accesses_per_thread=APT)
            exp.workload_defs = [wl]
            res = exp.run(EPOCHS)
            ts = res.by_name(wl.name)
            ops = np.asarray(ts.ops)
            for phase, window in (("in-progress", PROGRESS_WINDOW), ("stable", STABLE_WINDOW)):
                total_bw = bandwidth_gbps(float(ops[window].mean()), COLOC_SIM.epoch_seconds)
                rows.append([scen, policy, phase, total_bw * READ_RATIO, total_bw * (1 - READ_RATIO)])
    return rows


@pytest.fixture(scope="module")
def fig8_rows():
    return _run_fig8()


def test_fig8_benchmark(benchmark):
    benchmark.pedantic(_run_fig8, rounds=1, iterations=1)


def test_fig8_table(fig8_rows):
    text = render_table(
        ["wss", "policy", "phase", "read_GBps", "write_GBps"],
        fig8_rows,
        title="Fig 8 — microbenchmark bandwidth by policy / WSS / phase (higher is better)",
    )
    save_figure("fig8", text)


def _lookup(rows, scen, policy, phase):
    for r in rows:
        if r[:3] == [scen, policy, phase]:
            return r[3] + r[4]
    raise KeyError((scen, policy, phase))


def test_fig8_vulcan_leads_stable_phase(fig8_rows):
    """Paper: Vulcan 'significantly outperforms other systems' in the
    migration-stable phase."""
    for scen in SCENARIOS:
        vulcan = _lookup(fig8_rows, scen, "vulcan", "stable")
        best_other = max(_lookup(fig8_rows, scen, p, "stable") for p in POLICIES if p != "vulcan")
        assert vulcan >= 0.97 * best_other, f"vulcan not leading stable phase for {scen}"


def test_fig8_vulcan_competitive_during_migration(fig8_rows):
    for scen in SCENARIOS:
        vulcan = _lookup(fig8_rows, scen, "vulcan", "in-progress")
        best_other = max(_lookup(fig8_rows, scen, p, "in-progress") for p in POLICIES if p != "vulcan")
        assert vulcan >= 0.90 * best_other


def test_fig8_larger_wss_lower_bandwidth(fig8_rows):
    """More of the working set misses fast memory as WSS grows."""
    for policy in POLICIES:
        small = _lookup(fig8_rows, "small", policy, "stable")
        large = _lookup(fig8_rows, "large", policy, "stable")
        assert small > large


def test_fig8_stable_at_least_in_progress(fig8_rows):
    """Once placement converges, bandwidth should not be worse than
    during the heavy-migration phase (for the adaptive policies)."""
    for scen in SCENARIOS:
        v_stable = _lookup(fig8_rows, scen, "vulcan", "stable")
        v_prog = _lookup(fig8_rows, scen, "vulcan", "in-progress")
        assert v_stable >= 0.95 * v_prog
