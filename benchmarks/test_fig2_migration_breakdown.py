"""Figure 2 — single base-page migration cost breakdown vs CPU count.

Regenerates the stacked-bar data: for CPUs ∈ {2,4,8,16,32}, the cycles
spent in preparation / unmap / TLB shootdown / copy / remap, via the
*actual migration engine* running against the structural substrate (not
just the analytic model), so the engine and the calibrated model are
cross-checked against each other.

Paper anchors: total rises 50K → 750K cycles; preparation share rises
38.3% → 76.9%; preparation alone grows ~30×.
"""

import numpy as np
import pytest

from figutil import save_figure
from repro.machine.platform import Machine
from repro.metrics.reporting import render_table
from repro.mm.address_space import AddressSpace, Process
from repro.mm.frame_alloc import FrameAllocator
from repro.mm.lru import LruSubsystem
from repro.mm.migration import MigrationEngine, MigrationRequest
from repro.mm.migration_costs import MigrationCostModel
from repro.sim.config import paper_machine_config

CPU_COUNTS = (2, 4, 8, 16, 32)


def migrate_one_page_with(n_cpus: int) -> dict[str, float]:
    """Run one real single-page migration on an ``n_cpus`` machine and
    return the engine's phase ledger."""
    machine = Machine(paper_machine_config(n_cpus), rng=np.random.default_rng(0))
    alloc = FrameAllocator(fast_frames=1024, slow_frames=4096)
    lru = LruSubsystem(n_cpus=n_cpus)
    proc = Process(pid=1, name="bench", replication_enabled=False)
    core_map = {}
    for tid in range(n_cpus):  # one app thread per CPU, as in §2.2
        proc.spawn_thread(tid)
        machine.cpu.schedule_thread(tid, tid)
        core_map[tid] = tid
    vma = proc.mmap(1)
    space = AddressSpace(proc, alloc)
    space.fault(vma.start_vpn, tid=0, prefer_tier=1)
    engine = MigrationEngine(machine, alloc, space, lru, thread_core_map=core_map)
    engine.migrate(MigrationRequest(pid=1, vpn=vma.start_vpn, dest_tier=0, sync=True))
    return dict(engine.stats.phase_cycles)


def _run_fig2():
    model = MigrationCostModel()
    rows = []
    for c in CPU_COUNTS:
        b = model.single_page_breakdown(c)
        rows.append([c, b.prep, b.unmap, b.shootdown, b.copy, b.remap, b.total, b.prep_share])
    return rows


@pytest.fixture(scope="module")
def fig2_rows():
    return _run_fig2()


def test_fig2_benchmark(benchmark):
    benchmark.pedantic(_run_fig2, rounds=1, iterations=1)


def test_fig2_breakdown_table(fig2_rows):
    text = render_table(
        ["cpus", "prep", "unmap", "shootdown", "copy", "remap", "total", "prep_share"],
        fig2_rows,
        title="Fig 2 — single 4KB-page migration breakdown (cycles)",
        float_fmt="{:.0f}",
    )
    save_figure("fig2", text)


def test_fig2_anchor_totals(fig2_rows):
    by_cpu = {r[0]: r for r in fig2_rows}
    assert by_cpu[2][6] == pytest.approx(50_000, rel=1e-3)
    assert by_cpu[32][6] == pytest.approx(750_000, rel=1e-3)


def test_fig2_anchor_prep_shares(fig2_rows):
    by_cpu = {r[0]: r for r in fig2_rows}
    assert by_cpu[2][7] == pytest.approx(0.383, abs=1e-3)
    assert by_cpu[32][7] == pytest.approx(0.769, abs=1e-3)


def test_fig2_prep_grows_30x(fig2_rows):
    by_cpu = {r[0]: r for r in fig2_rows}
    assert by_cpu[32][1] / by_cpu[2][1] == pytest.approx(30, rel=0.02)


def test_fig2_engine_matches_model():
    """The live engine's ledger reproduces the analytic breakdown."""
    model = MigrationCostModel()
    for c in (2, 8, 32):
        ledger = migrate_one_page_with(c)
        b = model.single_page_breakdown(c)
        assert ledger["prep"] == pytest.approx(b.prep, rel=1e-6)
        # The engine books per-page fixed costs and the batch TLB round;
        # together with prep they are the same order as the model total.
        engine_total = sum(ledger.values())
        assert engine_total > b.prep  # prep strictly included
