"""Figure 1 — the cold-page dilemma under Memtis.

(a) Memcached solo, (b) Liblinear solo, (c) co-located: hot/cold pages
identified over time; (d) co-location impact on Memcached's hot-page
ratio and normalized performance.

Paper anchors: Memcached's hot-page ratio collapses under co-location
(75% → <28% on the authors' testbed) and its normalized performance
drops to ≈ 0.8× the standalone baseline.
"""

import numpy as np
import pytest

from figutil import APT, DILEMMA_EPOCHS, PAIR_SIM, save_figure, steady_mean
from repro.core.classify import ServiceClass
from repro.harness import ColocationExperiment
from repro.metrics.reporting import render_series, render_table
from repro.workloads.base import WorkloadSpec
from repro.workloads.liblinear import LiblinearWorkload
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.mixes import INTENSITY, PAPER_RSS_BYTES, dilemma_pair


def _solo(name: str, seed: int):
    rss = PAIR_SIM.pages_for(PAPER_RSS_BYTES[name])
    apt = int(APT * INTENSITY[name])
    spec = WorkloadSpec(
        name=name,
        service=ServiceClass.LC if name == "memcached" else ServiceClass.BE,
        rss_pages=rss,
        accesses_per_thread=apt,
    )
    cls = MemcachedWorkload if name == "memcached" else LiblinearWorkload
    return cls(spec, seed=seed)


def _run_fig1():
    solo_mc = ColocationExperiment("memtis", [_solo("memcached", 0)], sim=PAIR_SIM, seed=1).run(DILEMMA_EPOCHS)
    solo_ll = ColocationExperiment("memtis", [_solo("liblinear", 1)], sim=PAIR_SIM, seed=1).run(DILEMMA_EPOCHS)
    co = ColocationExperiment("memtis", dilemma_pair(PAIR_SIM, accesses_per_thread=APT), sim=PAIR_SIM, seed=1).run(DILEMMA_EPOCHS)
    return solo_mc, solo_ll, co


@pytest.fixture(scope="module")
def fig1():
    return _run_fig1()


def test_fig1_benchmark(benchmark):
    benchmark.pedantic(_run_fig1, rounds=1, iterations=1)


def test_fig1_abc_hot_cold_timeseries(fig1):
    solo_mc, solo_ll, co = fig1
    parts = []
    for label, res, name in (
        ("(a) Memcached solo", solo_mc, "memcached"),
        ("(b) Liblinear solo", solo_ll, "liblinear"),
        ("(c) co-located: Memcached", co, "memcached"),
        ("(c) co-located: Liblinear", co, "liblinear"),
    ):
        ts = res.by_name(name)
        parts.append(
            render_table(
                ["epoch", "hot", "hot_in_fast", "cold_in_fast", "fast_pages"],
                [
                    [e, h, hf, cf, fp]
                    for e, h, hf, cf, fp in zip(
                        ts.epochs[::5], ts.hot_pages[::5], ts.hot_in_fast[::5],
                        ts.cold_in_fast[::5], ts.fast_pages[::5],
                    )
                ],
                title=f"Fig 1 {label} — hot/cold pages over time (Memtis)",
            )
        )
    save_figure("fig1_abc", "\n\n".join(parts))
    # Co-location floods the fast tier with Liblinear pages.
    assert steady_mean(co.by_name("liblinear").fast_pages) > steady_mean(co.by_name("memcached").fast_pages)


def test_fig1_d_hot_ratio_and_normalized_perf(fig1):
    solo_mc, _, co = fig1
    ts_solo = solo_mc.by_name("memcached")
    ts_co = co.by_name("memcached")
    skip = DILEMMA_EPOCHS // 2
    solo_ratio = float(np.mean(ts_solo.hot_ratio[-10:]))
    co_ratio = float(np.mean(ts_co.hot_ratio[-10:]))
    norm_perf = ts_co.mean_ops(skip) / ts_solo.mean_ops(skip)

    table = render_table(
        ["scenario", "hot_page_ratio", "normalized_perf"],
        [["solo", solo_ratio, 1.0], ["co-located", co_ratio, norm_perf]],
        title="Fig 1(d) — Memcached under co-location (paper: ratio 0.75→<0.28, perf→0.8)",
    )
    series = render_series(
        "Memcached hot-page ratio over time (co-located)",
        ts_co.epochs[::2], list(ts_co.hot_ratio[::2]),
    )
    save_figure("fig1_d", table + "\n\n" + series)

    # Shape anchors: the ratio drops, and normalized perf degrades to
    # roughly the paper's 0.8x (we accept 0.65-0.9).
    assert co_ratio < solo_ratio
    assert 0.60 <= norm_perf <= 0.92, f"normalized perf {norm_perf:.3f} outside 0.8x-shaped band"


def test_fig1_liblinear_tolerates_colocation(fig1):
    """Paper: 'Liblinear experiences a relatively lower performance
    impact due to its BE workload characteristics'."""
    solo_mc, solo_ll, co = fig1
    skip = DILEMMA_EPOCHS // 2
    ll_norm = co.by_name("liblinear").mean_ops(skip) / solo_ll.by_name("liblinear").mean_ops(skip)
    mc_norm = co.by_name("memcached").mean_ops(skip) / solo_mc.by_name("memcached").mean_ops(skip)
    assert ll_norm > mc_norm
