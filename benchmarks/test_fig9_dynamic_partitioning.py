"""Figure 9 — Vulcan's dynamic behaviour under staggered co-location.

Memcached starts at t=0, PageRank at t=50 s, Liblinear at t=110 s
(paper §5.3, Table 2 RSS at the DESIGN.md scale).  Reproduces the three
panels:

(a) fast/slow placement (hot & cold pages per tier) per workload,
(b) fast-tier hit ratio (FTHR) over time,
(c) guaranteed performance target (GPT) over time.

Shape anchors: every arrival steps existing GPTs down (GFMC shrinks);
each workload's FTHR recovers after the arrival shocks; allocations
rebalance instead of starving anyone.
"""

import numpy as np
import pytest

from figutil import APT, COLOC_SIM, TIMELINE_EPOCHS, save_figure
from repro.harness import ColocationExperiment
from repro.metrics.reporting import render_table
from repro.workloads.mixes import PAPER_START_SECONDS, paper_colocation_mix

NAMES = ("memcached", "pagerank", "liblinear")


def _run_fig9():
    wls = paper_colocation_mix(COLOC_SIM, accesses_per_thread=APT)
    exp = ColocationExperiment("vulcan", wls, sim=COLOC_SIM, seed=1)
    return exp.run(TIMELINE_EPOCHS)


@pytest.fixture(scope="module")
def fig9():
    return _run_fig9()


def test_fig9_benchmark(benchmark):
    benchmark.pedantic(_run_fig9, rounds=1, iterations=1)


def test_fig9_panels(fig9):
    parts = []
    for name in NAMES:
        ts = fig9.by_name(name)
        rows = [
            [e, fp, hf, cf, round(f, 3), round(fp_pol, 3), round(g, 3), q]
            for e, fp, hf, cf, f, fp_pol, g, q in zip(
                ts.epochs[::4], ts.fast_pages[::4], ts.hot_in_fast[::4],
                ts.cold_in_fast[::4], ts.fthr_true[::4], ts.fthr_policy[::4],
                ts.gpt[::4], ts.quota[::4],
            )
        ]
        parts.append(
            render_table(
                ["epoch", "fast_pages", "hot_in_fast", "cold_in_fast",
                 "FTHR(true)", "FTHR(vulcan)", "GPT", "quota"],
                rows,
                title=f"Fig 9 — {name} dynamics under Vulcan",
            )
        )
    save_figure("fig9", "\n\n".join(parts))


def epoch_of(seconds: float) -> int:
    return int(seconds / COLOC_SIM.epoch_seconds)


def test_fig9_c_gpt_steps_down_on_arrivals(fig9):
    ts = fig9.by_name("memcached")
    g = dict(zip(ts.epochs, ts.gpt))
    before_pr = g[epoch_of(PAPER_START_SECONDS["pagerank"]) - 2]
    after_pr = g[epoch_of(PAPER_START_SECONDS["pagerank"]) + 4]
    after_ll = g[epoch_of(PAPER_START_SECONDS["liblinear"]) + 4]
    assert before_pr > after_pr > after_ll, "GPT must step down as co-runners arrive"


def test_fig9_b_fthr_tracks_vulcan_estimate(fig9):
    """Vulcan's sampled FTHR (Eq. 1-2) must agree with ground truth."""
    for name in NAMES:
        ts = fig9.by_name(name)
        true = np.asarray(ts.fthr_true[-10:])
        est = np.asarray(ts.fthr_policy[-10:])
        assert np.abs(true - est).mean() < 0.08


def test_fig9_b_fthr_above_gpt_in_steady_state(fig9):
    """The QoS controller holds every workload at or above its target."""
    for name in NAMES:
        ts = fig9.by_name(name)
        assert np.mean(ts.fthr_true[-10:]) >= np.mean(ts.gpt[-10:]) - 0.05, name


def test_fig9_a_no_one_starved(fig9):
    """'Leave no one behind': every workload holds fast memory at the end."""
    for name in NAMES:
        ts = fig9.by_name(name)
        assert ts.fast_pages[-1] > 100, f"{name} starved of fast memory"


def test_fig9_a_memcached_cedes_capacity_fairly(fig9):
    """Memcached starts with the whole tier; arrivals reclaim the slack
    while its genuinely hot pages stay resident."""
    ts = fig9.by_name("memcached")
    assert ts.fast_pages[0] > 3000  # solo: holds nearly everything
    assert ts.fast_pages[-1] < 1500  # steady: down to its needs
    hot_ratio_end = ts.hot_ratio[-5:].mean()
    assert hot_ratio_end > 0.5  # but its hot set survived
