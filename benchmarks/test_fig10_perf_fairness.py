"""Figure 10 — performance and fairness of TPP/Memtis/Nomad/Vulcan on
the three-application co-location.

(a) per-application performance, normalized to the lowest-performing
system per application (mean over trials, CI95 reported);
(b) the FTHR-weighted Cumulative Jain Fairness Index (Eq. 4) over the
steady co-located window.

Paper anchors (shape, not absolutes): Vulcan wins Memcached by a wide
margin (paper: +35% vs TPP, +25% vs Memtis); Vulcan posts the best
fairness (paper: +52% vs Memtis, +86% vs Nomad); overall average
improvement ≈ +12.4%.
"""

import numpy as np
import pytest

from figutil import APT, COLOC_SIM, TIMELINE_EPOCHS, TRIALS, save_figure, steady_cfi
from repro.harness import ColocationExperiment
from repro.metrics.perf import normalize_to_min
from repro.metrics.reporting import render_table
from repro.metrics.stats import mean_ci95
from repro.workloads.mixes import paper_colocation_mix

POLICIES = ("tpp", "memtis", "nomad", "vulcan")
NAMES = ("memcached", "pagerank", "liblinear")
STEADY = 15


def _run_fig10():
    perf: dict[str, dict[str, list[float]]] = {n: {p: [] for p in POLICIES} for n in NAMES}
    fairness: dict[str, list[float]] = {p: [] for p in POLICIES}
    for trial in range(TRIALS):
        for policy in POLICIES:
            wls = paper_colocation_mix(COLOC_SIM, seed=trial * 10, accesses_per_thread=APT)
            exp = ColocationExperiment(policy, wls, sim=COLOC_SIM, seed=trial + 1)
            res = exp.run(TIMELINE_EPOCHS)
            for name in NAMES:
                ts = res.by_name(name)
                perf[name][policy].append(float(np.mean(ts.ops[-STEADY:])))
            fairness[policy].append(steady_cfi(res, STEADY))
    return perf, fairness


@pytest.fixture(scope="module")
def fig10():
    return _run_fig10()


def test_fig10_benchmark(benchmark):
    benchmark.pedantic(_run_fig10, rounds=1, iterations=1)


def summarize(perf, fairness):
    norm_rows = []
    means = {n: {p: mean_ci95(perf[n][p]) for p in POLICIES} for n in NAMES}
    for name in NAMES:
        normed = normalize_to_min({p: means[name][p][0] for p in POLICIES})
        for p in POLICIES:
            mean, ci = means[name][p]
            norm_rows.append([name, p, normed[p], mean, ci])
    fair_rows = [[p, *mean_ci95(fairness[p])] for p in POLICIES]
    return norm_rows, fair_rows


def test_fig10_tables(fig10):
    perf, fairness = fig10
    norm_rows, fair_rows = summarize(perf, fairness)
    a = render_table(
        ["workload", "policy", "normalized_perf", "ops_per_epoch", "ci95"],
        norm_rows,
        title="Fig 10(a) — performance normalized to the lowest system (higher is better)",
        float_fmt="{:.3g}",
    )
    b = render_table(
        ["policy", "CFI", "ci95"],
        fair_rows,
        title="Fig 10(b) — FTHR-weighted Cumulative Jain Fairness Index (higher is better)",
    )
    save_figure("fig10", a + "\n\n" + b)


def _mean(perf, name, policy):
    return float(np.mean(perf[name][policy]))


def test_fig10_a_vulcan_wins_memcached_big(fig10):
    """The headline claim: the LC service is rescued from the dilemma."""
    perf, _ = fig10
    v = _mean(perf, "memcached", "vulcan")
    assert v / _mean(perf, "memcached", "tpp") > 1.25, "paper: ≈ +35% vs TPP"
    assert v / _mean(perf, "memcached", "memtis") > 1.02, "paper: ≈ +25% vs Memtis"
    assert v / _mean(perf, "memcached", "nomad") > 1.25


def test_fig10_a_vulcan_never_worst(fig10):
    perf, _ = fig10
    for name in NAMES:
        v = _mean(perf, name, "vulcan")
        worst = min(_mean(perf, name, p) for p in POLICIES)
        assert v > worst, f"vulcan is the worst system for {name}"


def test_fig10_a_vulcan_beats_tpp_and_nomad_everywhere(fig10):
    perf, _ = fig10
    for name in NAMES:
        v = _mean(perf, name, "vulcan")
        assert v >= 0.97 * _mean(perf, name, "tpp")
        assert v >= 0.97 * _mean(perf, name, "nomad")


def test_fig10_b_vulcan_best_fairness(fig10):
    _, fairness = fig10
    v = float(np.mean(fairness["vulcan"]))
    for p in ("tpp", "memtis", "nomad"):
        assert v > float(np.mean(fairness[p])), f"vulcan CFI must beat {p}"


def test_fig10_b_fairness_magnitudes(fig10):
    """Direction + rough factor of the paper's +52%/+86% fairness gains."""
    _, fairness = fig10
    v = float(np.mean(fairness["vulcan"]))
    m = float(np.mean(fairness["memtis"]))
    n = float(np.mean(fairness["nomad"]))
    assert v / m > 1.05
    assert v / n > 1.25


def test_fig10_average_improvement_positive(fig10):
    """Paper: '+12.4% on average' — we assert the average improvement of
    Vulcan over each baseline (across workloads) is clearly positive."""
    perf, _ = fig10
    gains = []
    for p in ("tpp", "memtis", "nomad"):
        for name in NAMES:
            gains.append(_mean(perf, name, "vulcan") / _mean(perf, name, p) - 1.0)
    assert float(np.mean(gains)) > 0.05
