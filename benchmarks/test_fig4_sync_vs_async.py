"""Figure 4 — synchronous vs asynchronous (transactional) page copying
for hot-page promotion across read:write ratios.

The microbenchmark promotes a single hot base page while the application
keeps accessing it with write fraction ``w``.  The score is achieved
accesses over a fixed window, accounting for (i) stall cycles the
migration imposes, and (ii) how long the page stays on the slow tier
before the promotion commits (async retries delay it).

Paper anchors: async wins for read-intensive access, sync wins for
write-intensive access, with a crossover in between.
"""

import numpy as np
import pytest

from figutil import save_figure
from repro.machine.platform import Machine
from repro.metrics.reporting import render_table
from repro.mm.address_space import AddressSpace, Process
from repro.mm.frame_alloc import FrameAllocator
from repro.mm.lru import LruSubsystem
from repro.mm.migration import MigrationEngine, MigrationOutcome, MigrationRequest, OptimizationFlags
from repro.mm.migration_costs import MigrationCostModel
from repro.sim.config import paper_machine_config
from repro.sim.units import ns_to_cycles

WRITE_FRACTIONS = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0]
WINDOW_CYCLES = 1_200_000.0
#: Hot-page access rate chosen so a copy window sees O(1) writes at
#: mid write-fractions — the regime where the sync/async trade-off is
#: actually interesting (0 writes → async trivially wins; >>1 → async
#: always aborts).
ACCESS_RATE_PER_KCYCLE = 0.08
TRIALS = 40

FAST_COST = ns_to_cycles(70.0)
SLOW_COST = ns_to_cycles(162.0 + 90.0)


def one_migration(sync: bool, write_fraction: float, seed: int):
    machine = Machine(paper_machine_config(8), rng=np.random.default_rng(0))
    alloc = FrameAllocator(fast_frames=64, slow_frames=256)
    lru = LruSubsystem(n_cpus=8)
    proc = Process(pid=1, name="fig4", replication_enabled=True)
    proc.spawn_thread(0)
    machine.cpu.schedule_thread(0, 0)
    vma = proc.mmap(1)
    space = AddressSpace(proc, alloc)
    space.fault(vma.start_vpn, tid=0, prefer_tier=1)
    engine = MigrationEngine(
        machine, alloc, space, lru,
        flags=OptimizationFlags(opt_prep=True, opt_tlb=True),
        thread_core_map={0: 0},
        rng=np.random.default_rng(seed),
    )
    out = engine.migrate(
        MigrationRequest(
            pid=1, vpn=vma.start_vpn, dest_tier=0, sync=sync,
            write_fraction=write_fraction,
            access_rate_per_kcycle=ACCESS_RATE_PER_KCYCLE,
        )
    )
    return engine.stats, out


def throughput_score(sync: bool, write_fraction: float, seed: int) -> float:
    """Accesses completed in the window around one promotion."""
    stats, out = one_migration(sync, write_fraction, seed)
    model = MigrationCostModel()
    copy = model.batch_copy_cycles(1)
    # Time until the page actually runs from the fast tier.
    if sync:
        t_promote = stats.total_cycles
    else:
        t_promote = (stats.retries + 1) * copy + stats.stall_cycles
        if out is MigrationOutcome.FELL_BACK_SYNC:
            t_promote += copy
    t_promote = min(t_promote, WINDOW_CYCLES)
    stall = min(stats.stall_cycles, WINDOW_CYCLES)
    avg_cost = (t_promote * SLOW_COST + (WINDOW_CYCLES - t_promote) * FAST_COST) / WINDOW_CYCLES
    usable = WINDOW_CYCLES - stall
    return usable / avg_cost


def _run_fig4():
    rows = []
    for w in WRITE_FRACTIONS:
        sync_scores = [throughput_score(True, w, s) for s in range(TRIALS)]
        async_scores = [throughput_score(False, w, s) for s in range(TRIALS)]
        rows.append([
            f"{int((1 - w) * 100)}:{int(w * 100)}",
            float(np.mean(sync_scores)),
            float(np.mean(async_scores)),
            w,
        ])
    return rows


@pytest.fixture(scope="module")
def fig4_rows():
    return _run_fig4()


def test_fig4_benchmark(benchmark):
    benchmark.pedantic(_run_fig4, rounds=1, iterations=1)


def test_fig4_table(fig4_rows):
    text = render_table(
        ["read:write", "sync_ops", "async_ops", "write_fraction"],
        [[r[0], r[1], r[2], f"{r[3]:.2f}"] for r in fig4_rows],
        title="Fig 4 — sync vs async copying across read:write ratios (higher is better)",
        float_fmt="{:.0f}",
    )
    save_figure("fig4", text)


def test_fig4_async_wins_read_intensive(fig4_rows):
    pure_read = fig4_rows[0]
    assert pure_read[2] > pure_read[1], "async must win at 100:0 read:write"


def test_fig4_sync_wins_write_intensive(fig4_rows):
    pure_write = fig4_rows[-1]
    assert pure_write[1] > pure_write[2], "sync must win at 0:100 read:write"


def test_fig4_crossover_exists(fig4_rows):
    advantage = [r[2] - r[1] for r in fig4_rows]  # async minus sync
    assert advantage[0] > 0 and advantage[-1] < 0
    # Advantage decreases (weakly) as writes increase.
    sign_changes = sum(
        1 for a, b in zip(advantage, advantage[1:]) if (a > 0) != (b > 0)
    )
    assert sign_changes == 1, f"expected one crossover, advantages={advantage}"
