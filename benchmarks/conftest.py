"""Benchmark-suite configuration.

The figure benches are single-shot experiments: re-running them dozens
of times for timing statistics would take hours and add nothing, so each
uses ``benchmark.pedantic(..., rounds=1)``.  ``pytest benchmarks/
--benchmark-only`` therefore reports one wall-clock measurement per
figure plus the printed/persisted figure data under ``benchmarks/out/``.
"""

import sys
from pathlib import Path

# Make `figutil` importable regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))
