"""Ablations — the design choices DESIGN.md calls out, isolated.

Not a paper figure, but the natural follow-ups its §3 invites:

* per-thread page-table replication on/off → shootdown scope and IPI
  traffic (§3.4's mechanism, measured directly);
* CBFRP vs the uniform straw-man vs hotness-only (Memtis) → fairness;
* biased four-queue promotion vs heat-only FIFO → write-stall exposure;
* shadowing on/off → demotion copy traffic.
"""

import numpy as np
import pytest

from figutil import APT, COLOC_SIM, TIMELINE_EPOCHS, save_figure, steady_cfi
from repro.harness import ColocationExperiment
from repro.metrics.reporting import render_table
from repro.mm.migration_costs import MigrationCostModel
from repro.workloads.mixes import paper_colocation_mix

EPOCHS = TIMELINE_EPOCHS // 2


def run(policy: str, seed=1, epochs=EPOCHS, **policy_kwargs):
    wls = paper_colocation_mix(COLOC_SIM, accesses_per_thread=APT)
    exp = ColocationExperiment(policy, wls, sim=COLOC_SIM, seed=seed, policy_kwargs=policy_kwargs)
    res = exp.run(epochs)
    return res, exp


# -- ablation 1: replication scope ------------------------------------------------


def _private_microbench():
    """A thread-private working set: where §3.4's scoping pays off.

    (The paper-mix hot pages are genuinely shared by all 8 threads —
    Memcached serves every key from every thread — so scoped shootdowns
    cannot shrink *their* coherence; the win is on private pages.)
    """
    from repro.core.classify import ServiceClass
    from repro.workloads.base import WorkloadSpec
    from repro.workloads.microbench import MicrobenchWorkload

    spec = WorkloadSpec(
        name="private-wss", service=ServiceClass.BE, rss_pages=4000,
        n_threads=8, accesses_per_thread=APT, populate_tier=1,
    )
    return MicrobenchWorkload(spec, seed=0, wss_pages=2000, shared_threads=False)


def test_ablation_replication_shrinks_ipi_traffic(benchmark):
    def measure():
        out = {}
        for policy in ("vulcan", "memtis"):
            exp = ColocationExperiment(policy, [_private_microbench()], sim=COLOC_SIM, seed=1)
            exp.run(EPOCHS // 2)
            ipis = exp.machine.cpu.ipi_stats.unicast_targets
            moved = sum(rt.engine.stats.pages_moved for rt in exp.policy.workloads.values())
            out[policy] = ipis / max(moved, 1)
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_figure(
        "ablation_replication",
        render_table(
            ["config", "ipi_targets_per_page_moved"],
            [["per-thread tables (vulcan)", out["vulcan"]], ["process-wide (memtis)", out["memtis"]]],
            title="Ablation — TLB shootdown scope on a private working set",
        ),
    )
    # Process-wide coherence IPIs every thread (8); the scoped shootdown
    # hits only the owning thread's core.
    assert out["vulcan"] < out["memtis"] / 2


# -- ablation 2: partitioning policy -------------------------------------------------


def test_ablation_cbfrp_vs_uniform_vs_hotness(benchmark):
    def measure():
        out = {}
        for policy in ("vulcan", "uniform", "memtis"):
            res, _ = run(policy)
            mc = np.mean(res.by_name("memcached").ops[-10:])
            out[policy] = (steady_cfi(res, 10), float(mc))
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_figure(
        "ablation_partitioning",
        render_table(
            ["partitioning", "steady_CFI", "memcached_ops"],
            [[k, v[0], v[1]] for k, v in out.items()],
            title="Ablation — CBFRP vs uniform split vs hotness-only",
            float_fmt="{:.3g}",
        ),
    )
    # CBFRP must beat hotness-only on fairness and uniform on LC perf.
    assert out["vulcan"][0] > out["memtis"][0]
    assert out["vulcan"][1] > 0.9 * out["uniform"][1]


# -- ablation 3: biased queues vs heat-only FIFO --------------------------------------


def test_ablation_bias_reduces_sync_exposure(benchmark):
    """With Table 1 bias, write-intensive pages go sync and read-intensive
    go transactional; the measured fallback rate must stay low (the
    engine is not asked to async-copy pages that will abort)."""

    def measure():
        _, exp = run("vulcan")
        retries = sum(rt.engine.stats.retries for rt in exp.policy.workloads.values())
        fallbacks = sum(rt.engine.stats.sync_fallbacks for rt in exp.policy.workloads.values())
        moved = sum(rt.engine.stats.pages_moved for rt in exp.policy.workloads.values())
        _, exp_nomad = run("nomad")
        retries_n = sum(rt.engine.stats.retries for rt in exp_nomad.policy.workloads.values())
        moved_n = sum(rt.engine.stats.pages_moved for rt in exp_nomad.policy.workloads.values())
        return (retries / max(moved, 1), fallbacks / max(moved, 1), retries_n / max(moved_n, 1))

    r_vulcan, f_vulcan, r_nomad = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_figure(
        "ablation_bias",
        render_table(
            ["config", "transactional_retries_per_page", "sync_fallbacks_per_page"],
            [["vulcan (Table 1 bias)", r_vulcan, f_vulcan], ["nomad (async for all)", r_nomad, float("nan")]],
            title="Ablation — biased copy-discipline dispatch",
        ),
    )
    assert r_vulcan <= r_nomad + 0.05


# -- ablation 4: shadowing --------------------------------------------------------


def test_ablation_shadow_remap_saves_demotion_copies(benchmark):
    def measure():
        _, exp = run("vulcan")
        remaps = sum(rt.engine.stats.shadow_remaps for rt in exp.policy.workloads.values())
        demotions = sum(rt.engine.stats.demotions for rt in exp.policy.workloads.values())
        return remaps, demotions

    remaps, demotions = benchmark.pedantic(measure, rounds=1, iterations=1)
    model = MigrationCostModel()
    saved = remaps * model.batch_copy_cycles(1)
    save_figure(
        "ablation_shadow",
        render_table(
            ["metric", "value"],
            [["demotions", demotions], ["shadow remap demotions", remaps],
             ["copy cycles saved", saved]],
            title="Ablation — Nomad-style shadow demotion",
            float_fmt="{:.3g}",
        ),
    )
    if demotions > 50:
        assert remaps > 0, "shadow fast path never used despite heavy demotion"
