"""Table 1 — page promotion priority and strategy matrix.

Exercises the biased migration policy on a mixed page population and
verifies the observable contract of Table 1:

    private + read-intensive  → ★★★★  async copy
    shared  + read-intensive  → ★★★   async copy
    private + write-intensive → ★★    sync copy
    shared  + write-intensive → ★     sync copy

plus the MLFQ escape hatch for very hot low-class pages.
"""

import numpy as np
import pytest

from figutil import save_figure
from repro.core.bias import BiasedMigrationPolicy
from repro.core.classify import PageClass
from repro.metrics.reporting import render_table
from repro.mm.frame_alloc import FrameAllocator
from repro.profiling.base import AccessBatch
from repro.profiling.pebs import PebsProfiler
from tests.conftest import populated_space


def build_population():
    """16 slow-tier pages, four of each Table 1 class, equal heat."""
    alloc = FrameAllocator(fast_frames=4, slow_frames=64)
    space = populated_space(alloc, n_pages=20, n_threads=2)
    prof = PebsProfiler(period=1)
    start = space.process.vmas[0].start_vpn + 4  # skip the 4 fast pages
    classes = {}
    for i in range(16):
        vpn = start + i
        shared = i % 2 == 1
        write = i % 4 >= 2
        owner = 0
        batch = AccessBatch(
            pid=space.process.pid, tid=owner,
            vpns=np.full(30, vpn, dtype=np.int64),
            is_write=np.full(30, write, dtype=bool),
        )
        prof.observe(batch)
        space.process.repl.note_access(vpn, owner)
        if shared:
            space.process.repl.note_access(vpn, 1)
        classes[vpn] = (shared, write)
    return alloc, space, prof, classes


def _run_table1():
    alloc, space, prof, classes = build_population()
    policy = BiasedMigrationPolicy(hot_threshold=4.0)
    policy.refresh_candidates(space.process.pid, prof, space.process.repl, alloc)
    picks = policy.select_promotions(space.process.pid, 16, prof)
    return picks, classes


@pytest.fixture(scope="module")
def table1():
    return _run_table1()


def test_table1_benchmark(benchmark):
    benchmark.pedantic(_run_table1, rounds=1, iterations=1)


def test_table1_rendering(table1):
    picks, classes = table1
    rows = []
    for order, m in enumerate(picks):
        shared, write = classes[m.vpn]
        rows.append([
            order,
            "shared" if shared else "private",
            "write-intensive" if write else "read-intensive",
            m.page_class.name,
            "★" * int(m.page_class),
            "sync" if m.sync else "async",
        ])
    save_figure(
        "table1",
        render_table(
            ["service_order", "ownership", "pattern", "class", "priority", "copy"],
            rows,
            title="Table 1 — promotion priority and strategy (as served by the queues)",
        ),
    )


def test_table1_classification_correct(table1):
    picks, classes = table1
    assert len(picks) == 16
    for m in picks:
        shared, write = classes[m.vpn]
        assert m.page_class.is_private == (not shared)
        assert m.page_class.is_write_intensive == write


def test_table1_strategy_column(table1):
    picks, _ = table1
    for m in picks:
        assert m.sync == (not m.page_class.use_async_copy)


def test_table1_service_order(table1):
    """At equal heat, service order is exactly the star order."""
    picks, _ = table1
    served_classes = [m.page_class for m in picks]
    expected = (
        [PageClass.PRIVATE_READ] * 4
        + [PageClass.SHARED_READ] * 4
        + [PageClass.PRIVATE_WRITE] * 4
        + [PageClass.SHARED_WRITE] * 4
    )
    assert served_classes == expected


def test_table1_mlfq_rescues_scalding_low_class_page():
    alloc, space, prof, classes = build_population()
    policy = BiasedMigrationPolicy(hot_threshold=4.0, boost_factor=2.0)
    # One shared-write page is 100x hotter than everything else.
    hot_vpn = max(vpn for vpn, (sh, wr) in classes.items() if sh and wr)
    batch = AccessBatch(
        pid=space.process.pid, tid=0,
        vpns=np.full(3000, hot_vpn, dtype=np.int64),
        is_write=np.ones(3000, dtype=bool),
    )
    prof.observe(batch)
    policy.refresh_candidates(space.process.pid, prof, space.process.repl, alloc)
    picks = policy.select_promotions(space.process.pid, 16, prof)
    position = [m.vpn for m in picks].index(hot_vpn)
    assert position < 12, "MLFQ must lift the scalding page above its base class"
